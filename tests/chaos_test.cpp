// Chaos-campaign fuzzer for correlated failure domains: randomized
// multi-rack scenarios mixing board-crash, link-flap, SEU and rack-event
// hazards (plus a scripted common-mode rack hit) over randomized recovery
// policies (mode, throttle, shed threshold, checkpointing). After every
// run the harness asserts machine-checkable invariants rather than
// scenario-specific expectations:
//
//   1. App conservation: completed + lost + shed + arrivals_shed ==
//      submitted — every submitted app ends in exactly one bucket once
//      the run drains (still-active is zero by construction: the kernel
//      ran out of events).
//   2. Availability algebra: availability == 1 iff no board crashed;
//      mean unavailability is bounded by crashes x reboot-time spread
//      over the fleet; every crash's reboot ran (the run drained).
//   3. MTTR bounds: every recovery ticket spans at least the detection
//      latency, and there is at most one ticket per crash (batched
//      detection can only merge them).
//   4. Bit-identity: the serial kernel, the sharded kernel at 1/2/4/8
//      workers, and a telemetry-instrumented replay all produce the same
//      run, byte for byte, under correlated faults.
//
// Plus the spare-pool exhaustion edge cases: every rack (spanning both
// pools) dying simultaneously with zero spares must still drain with
// every app accounted for, and a destination board dying mid-evacuation
// must re-queue the in-flight apps instead of losing them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "faults/scenario.h"
#include "metrics/experiment.h"
#include "obs/telemetry.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs {
namespace {

struct ChaosCase {
  cluster::ClusterOptions options;
  workload::Sequence sequence;
  int racks = 1;
  std::string describe;
};

// Every knob of a case derives from the fuzz seed through one meta-rng,
// so a failing seed reproduces exactly.
ChaosCase make_case(std::uint64_t fuzz_seed) {
  util::Rng meta(fuzz_seed);
  ChaosCase c;
  c.racks = 1 + static_cast<int>(meta.uniform_int(0, 1));
  cluster::ClusterOptions& o = c.options;
  o.boards_per_config = c.racks;
  // Rack r spans one board of each pool (a shared feed across the
  // failover pair — the hardest case for spare-pool recovery).
  for (int r = 0; r < c.racks; ++r) {
    faults::FailureDomain dom;
    dom.name = "r" + std::to_string(r);
    dom.boards = {r, c.racks + r};
    if (meta.bernoulli(0.5)) dom.jitter = sim::ms(1.0);
    if (meta.bernoulli(0.3)) dom.survival_probability = 0.25;
    o.faults.domains.push_back(std::move(dom));
  }
  o.faults.seed = 50'000 + fuzz_seed;
  o.faults.hazards.rack_event_per_s = 0.05 + 0.10 * meta.uniform01();
  if (meta.bernoulli(0.5)) o.faults.hazards.board_crash_per_s = 0.02;
  if (meta.bernoulli(0.5)) o.faults.hazards.link_flap_per_s = 0.10;
  if (meta.bernoulli(0.5)) o.faults.hazards.slot_seu_per_s = 0.50;
  o.faults.horizon = sim::seconds(20.0);
  // One guaranteed common-mode hit per run, on top of the hazard chains.
  o.faults.timeline.push_back(
      {sim::seconds(2.0), faults::FaultKind::kRackEvent, 0, -1});
  const int mode = static_cast<int>(meta.uniform_int(0, 2));
  o.recovery.enable_recovery = mode != 0;
  o.recovery.kill_restart = mode == 1;
  const int throttle = static_cast<int>(meta.uniform_int(0, 2));
  o.recovery.throttle =
      throttle == 0   ? cluster::RecoveryOptions::Throttle::kOff
      : throttle == 1 ? cluster::RecoveryOptions::Throttle::kDefer
                      : cluster::RecoveryOptions::Throttle::kShed;
  if (meta.bernoulli(0.3)) {
    o.recovery.shed_threshold = static_cast<int>(meta.uniform_int(0, 4));
  }
  o.checkpoint.enabled = mode == 2 && meta.bernoulli(0.5);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 12;
  util::Rng wl(200 + fuzz_seed);
  c.sequence = workload::generate_sequence(config, wl);
  c.describe = "fuzz_seed=" + std::to_string(fuzz_seed) +
               " racks=" + std::to_string(c.racks) +
               " mode=" + std::to_string(mode) +
               " throttle=" + std::to_string(throttle) +
               " ckpt=" + std::to_string(o.checkpoint.enabled);
  return c;
}

void check_invariants(const metrics::ClusterRunResult& r,
                      const ChaosCase& c) {
  SCOPED_TRACE(c.describe);
  // 1. Conservation: the run drained, so still-active is zero and every
  // submitted app is completed, lost, shed, or refused at the door.
  test::expect_app_conservation(r);
  EXPECT_EQ(static_cast<int>(r.apps.size()), r.completed);

  // 2. Availability algebra.
  const int n_boards = 2 * c.racks;
  if (r.recovery.boards_crashed == 0) {
    EXPECT_EQ(r.availability, 1.0);
  } else {
    EXPECT_LT(r.availability, 1.0);
    EXPECT_GE(r.availability, 0.0);
    // A drained run has executed every scheduled reboot.
    EXPECT_EQ(r.recovery.boards_rebooted, r.recovery.boards_crashed);
    // Each crash keeps its board down for exactly the reboot time, and
    // the mean is taken over a span at least as long as the last
    // completion, so unavailability is bounded by
    // crashes x reboot / (boards x span).
    sim::SimTime last_done = 0;
    for (const runtime::CompletedApp& a : r.apps) {
      last_done = std::max(last_done, a.completed);
    }
    if (last_done > 0) {
      const double bound =
          static_cast<double>(r.recovery.boards_crashed) *
          static_cast<double>(c.options.faults.repair.board_reboot) /
          (static_cast<double>(n_boards) * static_cast<double>(last_done));
      EXPECT_LE(1.0 - r.availability, bound + 1e-12);
    }
  }

  // 3. MTTR bounds: a ticket opens at detection (>= detection_latency
  // after its first crash) and batching can only merge tickets, never
  // mint extra ones.
  EXPECT_LE(r.recovery.mttr_count, r.recovery.boards_crashed);
  EXPECT_GE(r.recovery.mttr_total,
            static_cast<sim::SimDuration>(r.recovery.mttr_count) *
                c.options.recovery.detection_latency);

  // The scripted rack event always lands.
  EXPECT_GE(r.recovery.rack_events, 1);
}

// `compare_events` is off for the telemetry replay: instrumentation
// schedules its own sampling events in the kernel, so the raw event count
// is not telemetry-invariant — everything observable is.
void expect_same_run(const metrics::ClusterRunResult& a,
                     const metrics::ClusterRunResult& b,
                     const std::string& what, bool compare_events = true) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.response_ms.size(), b.response_ms.size());
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_EQ(a.response_ms[i], b.response_ms[i]) << i;
  }
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].completed, b.apps[i].completed) << i;
    EXPECT_EQ(a.apps[i].spec_index, b.apps[i].spec_index) << i;
  }
  EXPECT_EQ(a.recovery.boards_crashed, b.recovery.boards_crashed);
  EXPECT_EQ(a.recovery.rack_events, b.recovery.rack_events);
  EXPECT_EQ(a.recovery.spare_exhausted, b.recovery.spare_exhausted);
  EXPECT_EQ(a.recovery.apps_evacuated, b.recovery.apps_evacuated);
  EXPECT_EQ(a.recovery.apps_restarted, b.recovery.apps_restarted);
  EXPECT_EQ(a.recovery.apps_lost, b.recovery.apps_lost);
  EXPECT_EQ(a.recovery.apps_shed, b.recovery.apps_shed);
  EXPECT_EQ(a.recovery.arrivals_deferred, b.recovery.arrivals_deferred);
  EXPECT_EQ(a.recovery.arrivals_shed, b.recovery.arrivals_shed);
  EXPECT_EQ(a.recovery.readmissions, b.recovery.readmissions);
  EXPECT_EQ(a.recovery.mttr_total, b.recovery.mttr_total);
  EXPECT_EQ(a.recovery.mttr_count, b.recovery.mttr_count);
  EXPECT_EQ(a.availability, b.availability);
  if (compare_events) EXPECT_EQ(a.events, b.events);
}

// ------------------------------------------------------------ ChaosCampaign

class ChaosCampaign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosCampaign, InvariantsHoldAndKernelsAgree) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  ChaosCase c = make_case(GetParam());

  auto serial = metrics::run_cluster(suite, c.sequence, c.options);
  check_invariants(serial, c);

  // Serial is the oracle: the sharded kernel must reproduce it bit for
  // bit at every worker count, and telemetry must observe, not perturb.
  for (int workers : {1, 2, 4, 8}) {
    cluster::ClusterOptions sharded = c.options;
    sharded.kernel_workers = workers;
    auto run = metrics::run_cluster(suite, c.sequence, sharded);
    expect_same_run(serial, run,
                    c.describe + " workers=" + std::to_string(workers));
  }
  obs::Telemetry telemetry;
  auto instrumented = metrics::run_cluster(suite, c.sequence, c.options,
                                           sim::seconds(36000.0), &telemetry);
  expect_same_run(serial, instrumented, c.describe + " telemetry",
                  /*compare_events=*/false);
  // The rack counter made it into the registry (domains are present).
  double rack_total = 0;
  for (const auto& row : telemetry.registry().counters()) {
    if (row.name == "vs_rack_events_total") rack_total += row.cell.value();
  }
  EXPECT_EQ(rack_total, static_cast<double>(serial.recovery.rack_events));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosCampaign,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ------------------------------------------------------- SparePoolExhausted

TEST(SparePoolExhausted, AllRacksDieSimultaneouslyWithZeroSparesAndDrain) {
  // Two racks, each spanning one board of both pools; both scripted rack
  // events fire at the same instant, so all four boards die inside one
  // detection window and there is no spare pool left to fail over to. The
  // batched handler must record the exhaustion, queue every displaced app
  // for re-admission, and the run must still drain with every app
  // accounted for.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 16;
  util::Rng rng(71);
  auto seq = workload::generate_sequence(config, rng);

  cluster::ClusterOptions options;
  options.boards_per_config = 2;
  options.faults.seed = 71;
  for (int r = 0; r < 2; ++r) {
    faults::FailureDomain dom;
    dom.name = "r" + std::to_string(r);
    dom.boards = {r, 2 + r};
    options.faults.domains.push_back(std::move(dom));
    options.faults.timeline.push_back(
        {sim::seconds(2.0), faults::FaultKind::kRackEvent, r, -1});
  }
  options.recovery.throttle = cluster::RecoveryOptions::Throttle::kDefer;

  auto result = metrics::run_cluster(suite, seq, options);
  EXPECT_EQ(result.recovery.rack_events, 2);
  EXPECT_EQ(result.recovery.boards_crashed, 4);
  EXPECT_EQ(result.recovery.boards_rebooted, 4);
  EXPECT_GE(result.recovery.spare_exhausted, 1);
  EXPECT_GT(result.recovery.readmissions, 0);
  // Nothing is lost or shed under full recovery + defer: the whole
  // backlog re-admits after the reboots and the run completes.
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_EQ(result.recovery.apps_shed, 0);
  EXPECT_EQ(result.completed, result.submitted);
  test::expect_app_conservation(result);
}

TEST(SparePoolExhausted, FullOutageUnderShedThrottleRefusesButConserves) {
  // Same double-rack wipeout, kShed: arrivals landing during the outage
  // (or behind the readmission backlog) are refused at the door and must
  // show up in arrivals_shed — conservation still balances exactly.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 16;
  util::Rng rng(71);
  auto seq = workload::generate_sequence(config, rng);

  cluster::ClusterOptions options;
  options.boards_per_config = 2;
  options.faults.seed = 71;
  for (int r = 0; r < 2; ++r) {
    faults::FailureDomain dom;
    dom.name = "r" + std::to_string(r);
    dom.boards = {r, 2 + r};
    options.faults.domains.push_back(std::move(dom));
    options.faults.timeline.push_back(
        {sim::seconds(2.0), faults::FaultKind::kRackEvent, r, -1});
  }
  options.recovery.throttle = cluster::RecoveryOptions::Throttle::kShed;

  auto result = metrics::run_cluster(suite, seq, options);
  EXPECT_EQ(result.recovery.boards_crashed, 4);
  EXPECT_GE(result.recovery.spare_exhausted, 1);
  EXPECT_GT(result.recovery.arrivals_shed, 0);
  EXPECT_EQ(result.completed,
            result.submitted - result.recovery.arrivals_shed -
                result.recovery.apps_lost - result.recovery.apps_shed);
  test::expect_app_conservation(result);
}

TEST(SparePoolExhausted, DestinationDiesMidEvacuationAndAppsRequeue) {
  // Crash-during-evacuation race: the active board dies, the batched
  // handler fails the cluster over and starts the evacuation transfer —
  // and then the destination dies while the state is still on the link
  // (10 us into the 20 us Aurora setup window). The landing must find no
  // boards, queue the apps for re-admission, and the reboots must drain
  // everything.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 14;
  util::Rng rng(83);
  auto seq = workload::generate_sequence(config, rng);

  cluster::ClusterOptions options;
  options.faults.seed = 83;
  // Single-board racks: batching stays on, each board its own domain.
  for (int b = 0; b < 2; ++b) {
    faults::FailureDomain dom;
    dom.name = "b" + std::to_string(b);
    dom.boards = {b};
    options.faults.domains.push_back(std::move(dom));
  }
  const sim::SimTime crash_at = sim::seconds(2.0);
  options.faults.timeline.push_back(
      {crash_at, faults::FaultKind::kBoardCrash, 0, -1});
  options.faults.timeline.push_back(
      {crash_at + options.recovery.detection_latency + sim::us(10.0),
       faults::FaultKind::kBoardCrash, 1, -1});
  options.recovery.throttle = cluster::RecoveryOptions::Throttle::kDefer;

  auto result = metrics::run_cluster(suite, seq, options);
  EXPECT_EQ(result.recovery.boards_crashed, 2);
  EXPECT_EQ(result.recovery.boards_rebooted, 2);
  EXPECT_GT(result.recovery.readmissions, 0);
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_EQ(result.completed, result.submitted);
  test::expect_app_conservation(result);

  // The race is deterministic: a second run reproduces it bit for bit,
  // including the FIFO re-admission order.
  auto again = metrics::run_cluster(suite, seq, options);
  expect_same_run(result, again, "crash-during-evacuation determinism");
}

}  // namespace
}  // namespace vs
