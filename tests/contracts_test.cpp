// Contract (precondition) tests: the runtime enforces its API contracts
// with asserts, which this build keeps enabled. Each death test documents
// one contract a policy author must respect.
#include <gtest/gtest.h>

#include "fpga/board.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs::runtime {
namespace {

using test::ScriptedPolicy;
using test::make_uniform_app;

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, PrIntoBusySlotAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 2, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  rt.request_pr(id, 0, 0);
  EXPECT_DEATH(rt.request_pr(id, 1, 0), "slot must be idle");
}

TEST(ContractsDeathTest, PrOfNonPendingUnitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 1, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  rt.request_pr(id, 0, 0);
  EXPECT_DEATH(rt.request_pr(id, 0, 1), "unit must be pending");
}

TEST(ContractsDeathTest, WrongSlotKindAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 1, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);  // Little unit
  EXPECT_DEATH(rt.request_pr(id, 0, 0), "slot kind mismatch");  // B0 is Big
}

TEST(ContractsDeathTest, SubmitAfterStopAdmissionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  rt.stop_admission();
  auto app = make_uniform_app("a", 1, sim::ms(1));
  EXPECT_DEATH(rt.submit(app, 0, 1, 0), "draining");
}

TEST(ContractsDeathTest, SetUnitsAfterStartAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 2, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  rt.request_pr(id, 0, 0);
  EXPECT_DEATH(rt.set_units(id, apps::make_little_units(app)),
               "cannot re-unitise");
}

TEST(ContractsDeathTest, PreemptMidItemAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::GreedyPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 1, sim::ms(50));
  int id = rt.submit(app, 0, 5, 0);
  // Run until the unit is mid-item.
  while (!rt.app(id).units[0].item_in_flight && sim.step()) {
  }
  ASSERT_TRUE(rt.app(id).units[0].item_in_flight);
  EXPECT_DEATH(rt.preempt_unit(id, 0), "item boundaries");
}

TEST(ContractsDeathTest, ProgressVectorSizeMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 3, sim::ms(1));
  EXPECT_DEATH(rt.submit_with_progress(app, 0, 4, 0, {1, 1}),
               "cover every task");
}

TEST(ContractsDeathTest, NonMonotoneProgressAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  auto app = make_uniform_app("a", 2, sim::ms(1));
  // Downstream ahead of upstream is impossible in a pipeline.
  EXPECT_DEATH(rt.submit_with_progress(app, 0, 4, 0, {1, 3}), "monotone");
}

TEST(ContractsDeathTest, SlotExecWithoutConfigureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  fpga::Slot slot(0, fpga::SlotKind::kLittle, {1, 1, 1, 1});
  EXPECT_DEATH(slot.begin_exec(), "");
}

}  // namespace
}  // namespace vs::runtime
