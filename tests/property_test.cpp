// Property-based tests: randomised inputs checked against reference models
// and closed-form properties, parameterised over seeds (TEST_P sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "apps/bundling.h"
#include "apps/offline_flow.h"
#include "core/dswitch.h"
#include "sim/event_queue.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace vs {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

// ----------------------------------------------------- event queue vs model

TEST_P(Seeded, EventQueueMatchesReferenceModel) {
  util::Rng rng(GetParam());
  sim::EventQueue queue;
  // Reference: ordered multimap (time, seq) -> id, mirroring FIFO-at-time.
  std::map<std::pair<sim::SimTime, sim::EventId>, sim::EventId> model;
  std::set<sim::EventId> cancelled;
  std::vector<sim::EventId> fired;

  std::vector<sim::EventId> live_ids;
  for (int step = 0; step < 2000; ++step) {
    double action = rng.uniform01();
    if (action < 0.55) {
      auto t = rng.uniform_int(0, 1000);
      sim::EventId id = queue.schedule(t, [&fired, step] {
        fired.push_back(static_cast<sim::EventId>(step));
      });
      model.emplace(std::make_pair(t, id), id);
      live_ids.push_back(id);
    } else if (action < 0.7 && !live_ids.empty()) {
      std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_ids.size()) - 1));
      sim::EventId id = live_ids[pick];
      queue.cancel(id);
      cancelled.insert(id);
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->second == id) {
          model.erase(it);
          break;
        }
      }
    } else if (!queue.empty()) {
      ASSERT_FALSE(model.empty());
      auto expected = model.begin();
      sim::SimTime t = queue.next_time();
      EXPECT_EQ(t, expected->first.first);
      queue.pop().fn();
      model.erase(expected);
    }
  }
  // Drain: remaining pops must follow model order exactly.
  while (!queue.empty()) {
    ASSERT_FALSE(model.empty());
    EXPECT_EQ(queue.next_time(), model.begin()->first.first);
    queue.pop();
    model.erase(model.begin());
  }
  EXPECT_TRUE(model.empty());
}

// -------------------------------------------------------- stats vs two-pass

TEST_P(Seeded, RunningStatsMatchesTwoPass) {
  util::Rng rng(GetParam() ^ 0x5757);
  std::vector<double> values;
  util::RunningStats stats;
  int n = static_cast<int>(rng.uniform_int(1, 500));
  for (int i = 0; i < n; ++i) {
    double v = rng.uniform_real(-1e4, 1e4);
    values.push_back(v);
    stats.add(v);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double m2 = 0;
  for (double v : values) m2 += (v - mean) * (v - mean);
  EXPECT_NEAR(stats.mean(), mean, 1e-6);
  EXPECT_NEAR(stats.variance(), m2 / static_cast<double>(values.size()),
              1e-4);
  EXPECT_EQ(stats.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(stats.max(), *std::max_element(values.begin(), values.end()));
}

TEST_P(Seeded, MergedStatsEqualPooledStats) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  util::RunningStats pooled;
  std::vector<util::RunningStats> parts(4);
  for (int i = 0; i < 400; ++i) {
    double v = rng.uniform_real(-100, 100);
    pooled.add(v);
    parts[static_cast<std::size_t>(rng.uniform_int(0, 3))].add(v);
  }
  util::RunningStats merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-6);
}

TEST_P(Seeded, PercentileBracketsSample) {
  util::Rng rng(GetParam() ^ 0x1111);
  std::vector<double> values;
  int n = static_cast<int>(rng.uniform_int(1, 100));
  for (int i = 0; i < n; ++i) values.push_back(rng.uniform_real(0, 1000));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    double p = util::percentile(values, q);
    EXPECT_GE(p, sorted.front());
    EXPECT_LE(p, sorted.back());
  }
  // Monotone in q.
  EXPECT_LE(util::percentile(values, 0.5), util::percentile(values, 0.95));
}

// ------------------------------------------------------ bundling criterion

TEST_P(Seeded, ChosenBundleModeMinimisesMakespan) {
  util::Rng rng(GetParam() ^ 0x33);
  for (int trial = 0; trial < 50; ++trial) {
    int g = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<sim::SimDuration> lat;
    for (int i = 0; i < g; ++i) {
      lat.push_back(sim::ms(static_cast<double>(rng.uniform_int(1, 50))));
    }
    int batch = static_cast<int>(rng.uniform_int(1, 30));
    apps::BundleMode mode = apps::choose_mode(lat, batch);
    sim::SimDuration tmax = *std::max_element(lat.begin(), lat.end());
    sim::SimDuration sum = 0;
    for (auto l : lat) sum += l;
    sim::SimDuration parallel = tmax * (batch + g - 1);
    sim::SimDuration serial = sum * batch;
    if (mode == apps::BundleMode::kParallel) {
      EXPECT_LE(parallel, serial);
    } else {
      EXPECT_LT(serial, parallel);
    }
  }
}

// ------------------------------------------------------ partition properties

TEST_P(Seeded, PartitionPreservesOpsAndFits) {
  util::Rng rng(GetParam() ^ 0x99);
  apps::OfflineFlowConfig config;
  apps::KernelGraph graph{"rand", {}};
  int n = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < n; ++i) {
    apps::KernelOp op;
    op.name = "k" + std::to_string(i);
    double frac = rng.uniform_real(0.05, 0.85);
    op.raw_demand = {
        static_cast<std::int64_t>(
            frac * static_cast<double>(config.board.little_slot.luts)),
        static_cast<std::int64_t>(
            frac * 0.7 * static_cast<double>(config.board.little_slot.ffs)),
        static_cast<std::int64_t>(frac * 40),
        static_cast<std::int64_t>(frac * 80),
    };
    op.item_latency = sim::ms(static_cast<double>(rng.uniform_int(1, 10)));
    op.bytes_in = 1000;
    op.bytes_out = 500;
    graph.ops.push_back(op);
  }
  apps::FlowReport r = apps::partition(graph, config);
  // Every op assigned exactly once, in order.
  int total_ops = 0;
  for (int w : r.ops_per_task) {
    EXPECT_GE(w, 1);
    total_ops += w;
  }
  EXPECT_EQ(total_ops, n);
  // Every task fits the Little slot at synthesis and implementation.
  for (const apps::TaskSpec& t : r.app.tasks) {
    EXPECT_TRUE(config.board.little_slot.fits(t.synth_usage));
    EXPECT_TRUE(config.board.little_slot.fits(t.impl_usage));
    EXPECT_GT(t.item_latency, 0);
  }
  // Task count can never exceed op count.
  EXPECT_LE(r.task_count(), n);
}

TEST_P(Seeded, PartitionTaskCountIsMinimal) {
  // Brute-force the minimum chain-partition size for small graphs and
  // compare with the DP.
  util::Rng rng(GetParam() ^ 0xbeef);
  apps::OfflineFlowConfig config;
  apps::KernelGraph graph{"small", {}};
  int n = static_cast<int>(rng.uniform_int(1, 8));
  std::vector<double> fracs;
  for (int i = 0; i < n; ++i) {
    double frac = rng.uniform_real(0.1, 0.8);
    fracs.push_back(frac);
    apps::KernelOp op;
    op.name = "k" + std::to_string(i);
    op.raw_demand = {
        static_cast<std::int64_t>(
            frac * static_cast<double>(config.board.little_slot.luts)),
        0, 0, 0};
    op.item_latency = sim::ms(1.0);
    graph.ops.push_back(op);
  }
  apps::FlowReport r = apps::partition(graph, config);

  // Brute force over all 2^(n-1) cut masks.
  auto fits = [&](int i, int j) {
    fpga::ResourceVector raw;
    for (int k = i; k <= j; ++k) {
      raw += graph.ops[static_cast<std::size_t>(k)].raw_demand;
    }
    return config.board.little_slot.fits(config.synthesis.synthesize(raw));
  };
  int best = n + 1;
  for (int mask = 0; mask < (1 << (n - 1)); ++mask) {
    int tasks = 1, start = 0;
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      bool cut_after = (i < n - 1) && ((mask >> i) & 1);
      if (cut_after || i == n - 1) {
        ok = fits(start, i);
        if (cut_after) {
          ++tasks;
          start = i + 1;
        }
      }
    }
    if (ok) best = std::min(best, tasks);
  }
  EXPECT_EQ(r.task_count(), best);
}

// ---------------------------------------------------------- dswitch + misc

TEST_P(Seeded, DSwitchMonotoneAndBounded) {
  util::Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 100; ++trial) {
    auto prs = rng.uniform_int(1, 50);
    auto blocked = rng.uniform_int(0, prs);
    int apps_n = static_cast<int>(rng.uniform_int(1, 30));
    auto batch = rng.uniform_int(apps_n, apps_n * 30);
    double d = core::dswitch_value(blocked, prs, apps_n, batch);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    if (blocked < prs) {
      EXPECT_LE(d, core::dswitch_value(blocked + 1, prs, apps_n, batch));
    }
  }
}

TEST_P(Seeded, GanttRenderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x4242);
  std::vector<sim::Span> spans;
  int n = static_cast<int>(rng.uniform_int(0, 40));
  for (int i = 0; i < n; ++i) {
    sim::Span s;
    s.start = rng.uniform_int(0, 1'000'000);
    s.end = s.start + rng.uniform_int(0, 100'000);
    s.lane = "lane" + std::to_string(rng.uniform_int(0, 4));
    s.label = "ev" + std::to_string(i);
    s.kind = static_cast<sim::SpanKind>(rng.uniform_int(0, 5));
    spans.push_back(s);
  }
  std::string out = sim::render_gantt(spans, 80);
  EXPECT_FALSE(out.empty());
  if (n > 0) {
    EXPECT_NE(out.find("lane"), std::string::npos);
  }
}

TEST_P(Seeded, RngStreamsAreUncorrelated) {
  util::Rng a(GetParam(), 1);
  util::Rng b(GetParam(), 2);
  // Crude correlation check over 1000 draws.
  double dot = 0;
  for (int i = 0; i < 1000; ++i) {
    dot += (a.uniform01() - 0.5) * (b.uniform01() - 0.5);
  }
  EXPECT_LT(std::abs(dot / 1000.0), 0.02);
}

// ------------------------------------------- sharded kernel vs serial oracle

/// One pre-planned event for the kernel differential below.
struct PlannedEvent {
  int shard = 0;
  sim::SimTime time = 0;
  bool sync = false;
};

/// What a kernel run of a plan exposes deterministically: each shard's own
/// execution order (cross-shard window interleaving is unobservable) and
/// the global order of sync events, which only run at barriers.
struct KernelTrace {
  std::vector<std::vector<int>> per_tag;  ///< event indices, by shard
  std::vector<int> sync_order;            ///< global, sync events only
  std::uint64_t events = 0;
};

TEST_P(Seeded, ShardedKernelMatchesSerialOracleOnRandomEventGraphs) {
  util::Rng plan_rng(GetParam() ^ 0x5aaded);
  const int shards = 2 + static_cast<int>(GetParam() % 2);
  const sim::SimDuration lookahead = sim::ms(1.0);
  std::vector<PlannedEvent> plan;
  for (int i = 0; i < 200; ++i) {
    PlannedEvent e;
    e.shard = static_cast<int>(plan_rng.uniform_int(0, shards - 1));
    if (plan_rng.bernoulli(0.3)) {
      // Pin to a window boundary: k * lookahead, or one tick to either
      // side — where an off-by-one in the horizon comparison would show.
      e.time = lookahead * plan_rng.uniform_int(1, 20) +
               plan_rng.uniform_int(-1, 1);
    } else {
      e.time = sim::us(100.0) * plan_rng.uniform_int(0, 200);
    }
    e.sync = plan_rng.bernoulli(0.15);
    plan.push_back(e);
  }

  auto run_serial = [&] {
    sim::Simulator sim;
    KernelTrace trace;
    trace.per_tag.resize(static_cast<std::size_t>(shards));
    for (int i = 0; i < static_cast<int>(plan.size()); ++i) {
      const PlannedEvent& e = plan[static_cast<std::size_t>(i)];
      sim::TagScope scope(sim, static_cast<sim::ShardTag>(e.shard + 1));
      auto fn = [&trace, e, i] {
        trace.per_tag[static_cast<std::size_t>(e.shard)].push_back(i);
        if (e.sync) trace.sync_order.push_back(i);
      };
      if (e.sync) {
        sim.schedule_sync(e.time, fn);
      } else {
        sim.schedule(e.time, fn);
      }
    }
    trace.events = sim.run();
    return trace;
  };

  auto run_sharded = [&](int workers) {
    sim::ShardedOptions options;
    options.shards = shards;
    options.workers = workers;
    options.lookahead = lookahead;
    sim::ShardedSimulator kernel(options);
    KernelTrace trace;
    trace.per_tag.resize(static_cast<std::size_t>(shards));
    for (int i = 0; i < static_cast<int>(plan.size()); ++i) {
      const PlannedEvent& e = plan[static_cast<std::size_t>(i)];
      // per_tag rows are thread-confined to their shard's worker;
      // sync_order is only touched in serial barrier phases.
      auto fn = [&trace, e, i] {
        trace.per_tag[static_cast<std::size_t>(e.shard)].push_back(i);
        if (e.sync) trace.sync_order.push_back(i);
      };
      sim::Simulator& s = kernel.shard(e.shard);
      if (e.sync) {
        s.schedule_sync(e.time, fn);
      } else {
        s.schedule(e.time, fn);
      }
    }
    trace.events = kernel.run();
    return trace;
  };

  KernelTrace reference = run_serial();
  EXPECT_EQ(reference.events, plan.size());
  for (int workers : {1, 4}) {
    KernelTrace sharded = run_sharded(workers);
    EXPECT_EQ(sharded.events, reference.events) << "workers=" << workers;
    EXPECT_EQ(sharded.sync_order, reference.sync_order)
        << "workers=" << workers;
    for (int s = 0; s < shards; ++s) {
      EXPECT_EQ(sharded.per_tag[static_cast<std::size_t>(s)],
                reference.per_tag[static_cast<std::size_t>(s)])
          << "workers=" << workers << " shard=" << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace vs
