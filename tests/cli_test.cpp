// Tests for the command-line flag parser.
#include <cstdlib>

#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/log.h"

namespace vs::util {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValues) {
  CliArgs args = parse({"--system", "nimblock", "--apps", "20"});
  EXPECT_EQ(args.get("system"), "nimblock");
  EXPECT_EQ(args.get_int("apps", 0), 20);
}

TEST(Cli, EqualsSeparatedValues) {
  CliArgs args = parse({"--seed=42", "--t1=0.05"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("t1", 0), 0.05);
}

TEST(Cli, BareBooleanFlags) {
  CliArgs args = parse({"--cluster", "--quality"});
  EXPECT_TRUE(args.get_bool("cluster"));
  EXPECT_TRUE(args.get_bool("quality"));
  EXPECT_FALSE(args.get_bool("missing"));
}

TEST(Cli, BooleanNegations) {
  CliArgs args = parse({"--prewarm=false", "--switching=0", "--x=no"});
  EXPECT_FALSE(args.get_bool("prewarm", true));
  EXPECT_FALSE(args.get_bool("switching", true));
  EXPECT_FALSE(args.get_bool("x", true));
}

TEST(Cli, FallbacksWhenAbsent) {
  CliArgs args = parse({});
  EXPECT_EQ(args.get("system", "default"), "default");
  EXPECT_EQ(args.get_int("apps", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
  EXPECT_FALSE(args.has("anything"));
}

TEST(Cli, PositionalArguments) {
  CliArgs args = parse({"input.csv", "--flag", "v", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  CliArgs args = parse({"--a", "--b", "value"});
  EXPECT_EQ(args.get("a"), "true");
  EXPECT_EQ(args.get("b"), "value");
}

TEST(Log, ParseLogLevelIsCaseInsensitiveWithFallback) {
  EXPECT_EQ(parse_log_level("trace", LogLevel::kWarn), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
}

TEST(Log, InitFromEnvAppliesVsLogOnce) {
  LogLevel saved = Log::level();
  ::setenv("VS_LOG", "debug", 1);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  // Invalid values leave the level untouched.
  ::setenv("VS_LOG", "shouty", 1);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  // Unset leaves it untouched too.
  ::unsetenv("VS_LOG");
  Log::set_level(LogLevel::kInfo);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kInfo);
  Log::set_level(saved);
}

TEST(Cli, ResolveIntAndDoublePrecedence) {
  // Flag beats env beats fallback — the pattern the checkpoint/migration
  // knobs (--ckpt-interval / --ckpt-granularity / --precopy-rounds) use.
  ASSERT_EQ(::setenv("VS_CKPT_GRANULARITY", "1024", 1), 0);
  ASSERT_EQ(::setenv("VS_CKPT_INTERVAL", "12.5", 1), 0);
  CliArgs with_flags =
      parse({"--ckpt-granularity", "2048", "--ckpt-interval", "7.5"});
  EXPECT_EQ(
      resolve_int(&with_flags, "ckpt-granularity", "VS_CKPT_GRANULARITY", 64),
      2048);
  EXPECT_DOUBLE_EQ(
      resolve_double(&with_flags, "ckpt-interval", "VS_CKPT_INTERVAL", 25.0),
      7.5);
  CliArgs no_flags = parse({});
  EXPECT_EQ(
      resolve_int(&no_flags, "ckpt-granularity", "VS_CKPT_GRANULARITY", 64),
      1024);
  EXPECT_DOUBLE_EQ(
      resolve_double(&no_flags, "ckpt-interval", "VS_CKPT_INTERVAL", 25.0),
      12.5);
  EXPECT_EQ(resolve_int(nullptr, "ckpt-granularity", "VS_CKPT_GRANULARITY",
                        64),
            1024);
  ASSERT_EQ(::unsetenv("VS_CKPT_GRANULARITY"), 0);
  ASSERT_EQ(::unsetenv("VS_CKPT_INTERVAL"), 0);
  EXPECT_EQ(
      resolve_int(&no_flags, "ckpt-granularity", "VS_CKPT_GRANULARITY", 64),
      64);
  EXPECT_DOUBLE_EQ(
      resolve_double(&no_flags, "ckpt-interval", "VS_CKPT_INTERVAL", 25.0),
      25.0);
}

}  // namespace
}  // namespace vs::util
