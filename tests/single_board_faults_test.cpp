// Tests for fault injection on the single-board experiment harness
// (metrics::run_single_board): a fig5-style cell replayed under scripted
// crashes and SEU hazards with hold-and-readmit recovery, checkpointed
// restore across the reboot, determinism, and byte-identity of the
// fault-free path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "faults/scenario.h"
#include "metrics/experiment.h"
#include "obs/telemetry.h"
#include "test_helpers.h"
#include "workload/generator.h"

namespace vs {
namespace {

workload::Sequence fig5_sequence(std::uint64_t seed, int n_apps) {
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStandard;
  config.apps_per_sequence = n_apps;
  util::Rng rng(seed);
  return workload::generate_sequence(config, rng);
}

metrics::RunOptions crashy_options() {
  metrics::RunOptions options;
  options.faults.seed = 808;
  options.faults.timeline.push_back(
      {sim::seconds(1.0), faults::FaultKind::kBoardCrash, 0, -1});
  options.faults.hazards.slot_seu_per_s = 0.5;
  options.faults.horizon = sim::seconds(20.0);
  return options;
}

// ------------------------------------------------------ SingleBoardFaults

TEST(SingleBoardFaults, CrashHoldsAndReadmitsEveryDisplacedApp) {
  // A fig5-style cell (VersaSlot Big.Little, standard congestion) with a
  // scripted crash mid-run: the harness freezes the epoch, holds displaced
  // apps and arrivals, and re-admits everything at reboot — no app is lost
  // and the run drains.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = fig5_sequence(17, 12);
  auto result = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, crashy_options());
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.boards_crashed, 1);
  EXPECT_EQ(result.recovery.boards_rebooted, 1);
  EXPECT_GT(result.recovery.readmissions, 0);
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_EQ(result.recovery.apps_shed, 0);
  EXPECT_EQ(result.recovery.mttr_count, 1);
  EXPECT_GT(result.recovery.mttr_ms_mean(), 0.0);
  EXPECT_LT(result.availability, 1.0);
  EXPECT_GT(result.availability, 0.0);
  test::expect_app_conservation(result);
}

TEST(SingleBoardFaults, RackEventOnSingleBoardDomainCrashesAndReadmits) {
  // A one-board failure domain: the scripted rack event crashes the only
  // member through the ordinary crash path, the harness holds and
  // re-admits, and the rack record is counted.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = fig5_sequence(17, 12);
  metrics::RunOptions options;
  options.faults.seed = 808;
  faults::FailureDomain dom;
  dom.name = "solo";
  dom.boards = {0};
  options.faults.domains.push_back(dom);
  options.faults.timeline.push_back(
      {sim::seconds(1.0), faults::FaultKind::kRackEvent, 0, -1});
  options.faults.horizon = sim::seconds(20.0);
  auto result = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, options);
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.rack_events, 1);
  EXPECT_EQ(result.recovery.boards_crashed, 1);
  EXPECT_EQ(result.recovery.boards_rebooted, 1);
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_LT(result.availability, 1.0);
  test::expect_app_conservation(result);
}

TEST(SingleBoardFaults, SeuHazardsFireAndRunsStillDrain) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = fig5_sequence(29, 10);
  metrics::RunOptions options;
  options.faults.seed = 5;
  options.faults.hazards.slot_seu_per_s = 4.0;
  options.faults.horizon = sim::seconds(20.0);
  auto result = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, options);
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_GT(result.recovery.slot_seus, 0);
  EXPECT_EQ(result.recovery.boards_crashed, 0);
  EXPECT_EQ(result.availability, 1.0);  // SEUs never take the board down
  test::expect_app_conservation(result);
}

TEST(SingleBoardFaults, CheckpointedCrashRestoresSnapshotProgress) {
  // With checkpointing on, the same crashy cell restores bundled apps from
  // their snapshots instead of restarting them from scratch.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 14;
  util::Rng rng(31);
  auto seq = workload::generate_sequence(config, rng);
  metrics::RunOptions options = crashy_options();
  options.faults.hazards.slot_seu_per_s = 0.0;
  options.checkpoint.enabled = true;
  auto result = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, options);
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_GT(result.recovery.apps_checkpoint_restored, 0);
  EXPECT_GT(result.counters.ckpt_snapshots, 0);
  EXPECT_GT(result.counters.ckpt_bytes, 0);
  test::expect_app_conservation(result);

  // Without checkpointing the same displaced apps restart from scratch.
  metrics::RunOptions plain = options;
  plain.checkpoint.enabled = false;
  auto base = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, plain);
  EXPECT_EQ(base.recovery.apps_checkpoint_restored, 0);
  EXPECT_EQ(base.counters.ckpt_snapshots, 0);
  // Work the checkpointed run restored had to restart from scratch here.
  EXPECT_GT(base.recovery.apps_restarted, 0);
}

TEST(SingleBoardFaults, FaultyRunsAreDeterministic) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = fig5_sequence(17, 12);
  metrics::RunOptions options = crashy_options();
  options.checkpoint.enabled = true;
  auto a = metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                     suite, seq, options);
  auto b = metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                     suite, seq, options);
  ASSERT_EQ(a.response_ms.size(), b.response_ms.size());
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_EQ(a.response_ms[i], b.response_ms[i]) << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.recovery.mttr_total, b.recovery.mttr_total);
  EXPECT_EQ(a.recovery.slot_seus, b.recovery.slot_seus);
  EXPECT_EQ(a.availability, b.availability);
}

TEST(SingleBoardFaults, FaultFreeScenarioLeavesOutputsUntouched) {
  // A default (disabled) scenario must construct no plane and reproduce
  // the plain harness bit-for-bit, for every system that runs in fig 5.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = fig5_sequence(17, 10);
  for (int k = 0; k < metrics::kSystemCount; ++k) {
    auto kind = static_cast<metrics::SystemKind>(k);
    auto plain = metrics::run_single_board(kind, suite, seq, {});
    metrics::RunOptions options;
    options.faults = faults::FaultScenario{};
    auto defaulted = metrics::run_single_board(kind, suite, seq, options);
    ASSERT_EQ(defaulted.response_ms.size(), plain.response_ms.size());
    for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
      EXPECT_EQ(defaulted.response_ms[i], plain.response_ms[i])
          << metrics::system_name(kind) << " app " << i;
    }
    EXPECT_EQ(defaulted.makespan, plain.makespan);
    EXPECT_EQ(defaulted.recovery.boards_crashed, 0);
    EXPECT_EQ(defaulted.availability, 1.0);
  }
}

TEST(SingleBoardFaults, PcapOnlyScenarioRoutesThroughThePlane) {
  // A scenario carrying only the PCAP CRC model exercises the plane's
  // add_board path (stream "pcap/0"); the run completes, stays
  // deterministic, and exports the load-failure counter when instrumented.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = fig5_sequence(17, 10);
  metrics::RunOptions options;
  options.faults.seed = 909;
  options.faults.pcap_crc_probability = 0.3;
  obs::Telemetry telemetry;
  options.telemetry = &telemetry;
  auto result = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, options);
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.boards_crashed, 0);
  double failures = 0;
  for (const auto& row : telemetry.registry().counters()) {
    if (row.name == "vs_pcap_load_failures_total") {
      failures += row.cell.value();
    }
  }
  EXPECT_GT(failures, 0.0);

  metrics::RunOptions uninstrumented = options;
  uninstrumented.telemetry = nullptr;
  auto again = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, uninstrumented);
  ASSERT_EQ(again.response_ms.size(), result.response_ms.size());
  for (std::size_t i = 0; i < result.response_ms.size(); ++i) {
    EXPECT_EQ(again.response_ms[i], result.response_ms[i]) << i;
  }
}

}  // namespace
}  // namespace vs
