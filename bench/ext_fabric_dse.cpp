// Extension: Big/Little fabric design-space exploration.
//
// The paper fixes the Big.Little layout at 2 Big + 4 Little but notes the
// system "can be extended to any Big/Little configuration" (§III-A). This
// bench sweeps every configuration with the same total reconfigurable area
// as 8 Little slots (one Big slot = two Little) and runs the VersaSlot
// policy on each, across Standard and Stress arrivals — answering which
// mix of slot sizes serves mixed workloads best and whether the paper's
// 2B+4L choice is on the frontier.
// The (congestion × fabric × sequence) grid runs on metrics::SweepRunner
// (--jobs N / VS_JOBS) with deterministic grid-order reduction.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  // The paper's five apps all bundle into Big slots, which favours
  // Big-heavy fabrics. Real mixes also contain small apps for which
  // bundling has nothing to merge; add a single-task FFT so Little slots'
  // granularity advantage is represented in the sweep.
  {
    apps::AppSpec fft;
    fft.name = "FFT";
    apps::TaskSpec t;
    t.index = 0;
    t.name = "fft1k";
    apps::SynthesisModel model;
    t.synth_usage = model.synthesize({26'000, 40'000, 60, 220});
    t.impl_usage = model.implement(t.synth_usage);
    t.item_latency = sim::ms(14.0);
    t.item_bytes_in = 400'000;
    t.item_bytes_out = 400'000;
    t.bitstream_bytes = params.little_bitstream_bytes;
    fft.tasks.push_back(t);
    suite.push_back(fft);
  }

  // Equal-area configurations: big*2 + little == 8 Little-equivalents.
  const fpga::FabricConfig configs[] = {
      fpga::FabricConfig::custom(0, 8),  // the paper's Only.Little
      fpga::FabricConfig::custom(1, 6),
      fpga::FabricConfig::custom(2, 4),  // the paper's Big.Little
      fpga::FabricConfig::custom(3, 2),
      fpga::FabricConfig::custom(4, 0),  // all Big
  };

  std::cout << "=== Extension: fabric design-space exploration "
               "(equal-area Big/Little mixes) ===\n"
            << "VersaSlot policy, 5 sequences x 20 apps per condition\n\n";

  for (auto congestion :
       {workload::Congestion::kStandard, workload::Congestion::kStress}) {
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = 20;
    config.suite_size = static_cast<int>(suite.size());
    auto sequences = workload::generate_sequences(config, 5, 2025);

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table({"fabric", "mean ms", "P95 ms", "PRs", "PR-blocked",
                       "done"});
    // One sweep job per (fabric, sequence), reduced per fabric in order.
    std::vector<metrics::SweepJob> grid;
    for (const fpga::FabricConfig& fabric : configs) {
      metrics::RunOptions options;
      options.fabric = fabric;
      // Use the Big.Little policy wherever Big slots exist, else Only.Little.
      metrics::SystemKind kind = fabric.big_slots > 0
                                     ? metrics::SystemKind::kVersaBigLittle
                                     : metrics::SystemKind::kVersaOnlyLittle;
      for (const auto& seq : sequences) {
        grid.push_back(metrics::SweepJob{kind, seq, options});
      }
    }
    auto cells = runner.run(suite, grid);
    std::size_t cursor = 0;
    for (const fpga::FabricConfig& fabric : configs) {
      std::vector<double> pooled;
      std::int64_t prs = 0, blocked = 0;
      int done = 0, submitted = 0;
      for (std::size_t si = 0; si < sequences.size(); ++si) {
        const auto& r = cells[cursor++];
        pooled.insert(pooled.end(), r.response_ms.begin(),
                      r.response_ms.end());
        prs += r.counters.pr_requests;
        blocked += r.counters.pr_blocked;
        done += r.completed;
        submitted += r.submitted;
      }
      util::Summary s = util::summarize(pooled);
      table.add_row();
      table.cell(std::to_string(fabric.big_slots) + "B+" +
                 std::to_string(fabric.little_slots) + "L");
      table.cell(s.mean, 1);
      table.cell(s.p95, 1);
      table.cell(prs);
      table.cell(blocked);
      table.cell(std::to_string(done) + "/" + std::to_string(submitted));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(Big-heavy fabrics cut PR count and contention but waste "
               "capacity on small apps — a 1-task FFT occupies a whole Big "
               "slot; all-Little maximises sharing granularity but pays the "
               "PCAP queue. The paper's 2B+4L sits on the frontier for the "
               "mixed workload)\n";
  return 0;
}
