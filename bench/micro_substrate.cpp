// Micro-benchmarks of the simulation substrate and control-plane
// algorithms, via google-benchmark: event-queue throughput, PCAP queueing,
// the optimal-slot ILP approximation, the slot-allocation pass, and
// whole-sequence simulation rates for each scheduler.
//
// The event-kernel benches (BM_EventQueueScheduleAndPop,
// BM_SimulatorEventRate) report an `allocs_per_event` counter fed by the
// allocation-counting operator new below: the InlineEvent + slab-heap
// kernel must execute steady-state events with ZERO heap allocations, and
// scripts/bench_substrate.sh records the numbers in BENCH_substrate.json.
#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "metrics/experiment.h"
#include "obs/metrics.h"
#include "obs/trace_hub.h"
#include "runtime/board_runtime.h"
#include "sim/core.h"
#include "sim/event_queue.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workload/generator.h"

// ---- allocation-counting hook ---------------------------------------------
// Replaces global operator new/delete for this binary only. The counter is
// sampled around the timed loops; atomics because google-benchmark spawns
// helper threads.
namespace {
std::atomic<std::int64_t> g_alloc_calls{0};

std::int64_t alloc_calls() noexcept {
  return g_alloc_calls.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace {

using namespace vs;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::EventQueue q;
  // Warm the slab and node heap to their high-water mark so the timed loop
  // measures the steady state (capacity growth happens once per process).
  for (int i = 0; i < n; ++i) q.schedule((i * 2654435761u) % 1000000, [] {});
  while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);

  // Steady-state allocation probe, sampled outside the harness loop so the
  // count attributes to the kernel alone (google-benchmark's bookkeeping
  // threads allocate concurrently during timed regions). Must be 0.
  std::int64_t probe_before = alloc_calls();
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 2654435761u) % 1000000, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  double steady_allocs = static_cast<double>(alloc_calls() - probe_before);

  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 2654435761u) % 1000000, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["allocs_per_event"] = steady_allocs / (10.0 * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

/// A self-rescheduling tick chain. A named struct (not a std::function):
/// the closure re-schedules a fresh copy of itself, which InlineEvent
/// stores inline — the steady-state event loop touches no allocator.
struct Tick {
  sim::Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) sim->schedule(100, Tick{sim, remaining});
  }
};

void BM_SimulatorEventRate(benchmark::State& state) {
  constexpr int kEvents = 10000;
  sim::Simulator sim;
  int remaining = 0;
  auto run_chain = [&] {
    remaining = kEvents;
    sim.schedule(0, Tick{&sim, &remaining});
    sim.run();
  };
  run_chain();  // warm the queue's slab and node heap

  // Steady-state allocation probe (see BM_EventQueueScheduleAndPop).
  std::int64_t probe_before = alloc_calls();
  for (int rep = 0; rep < 10; ++rep) run_chain();
  double steady_allocs = static_cast<double>(alloc_calls() - probe_before);

  for (auto _ : state) {
    run_chain();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = steady_allocs / (10.0 * kEvents);
}
BENCHMARK(BM_SimulatorEventRate);

/// The tick chain sharded across per-board queues under the conservative
/// window kernel, Arg(N) = window workers (0 = serial reference kernel on
/// one Simulator, the baseline the others compare against). Event counts
/// are identical at every arg by construction; the rate shows the window
/// machinery's overhead — actual speedup needs multi-core hardware (the CI
/// container has one CPU, so workers > 1 serialise).
void BM_ShardedKernelEventRate(benchmark::State& state) {
  constexpr int kEventsPerShard = 2500;
  constexpr int kShards = 4;
  const int workers = static_cast<int>(state.range(0));

  if (workers == 0) {
    sim::Simulator sim;
    std::array<int, kShards> remaining{};
    auto run_chains = [&] {
      for (int s = 0; s < kShards; ++s) {
        remaining[static_cast<std::size_t>(s)] = kEventsPerShard;
        sim::TagScope scope(sim, static_cast<sim::ShardTag>(s + 1));
        sim.schedule(0, Tick{&sim, &remaining[static_cast<std::size_t>(s)]});
      }
      sim.run();
    };
    for (auto _ : state) {
      run_chains();
      benchmark::DoNotOptimize(sim.events_executed());
    }
    state.SetItemsProcessed(state.iterations() * kEventsPerShard * kShards);
    return;
  }

  for (auto _ : state) {
    // The kernel pins its shard count at construction, so each iteration
    // rebuilds it; the chains dwarf the setup cost.
    sim::ShardedOptions options;
    options.shards = kShards;
    options.workers = workers;
    options.lookahead = 1000;  // 10 chain ticks per window
    sim::ShardedSimulator kernel(options);
    std::array<int, kShards> remaining{};
    for (int s = 0; s < kShards; ++s) {
      remaining[static_cast<std::size_t>(s)] = kEventsPerShard;
      kernel.shard(s).schedule(
          0, Tick{&kernel.shard(s), &remaining[static_cast<std::size_t>(s)]});
    }
    benchmark::DoNotOptimize(kernel.run());
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerShard * kShards);
}
BENCHMARK(BM_ShardedKernelEventRate)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

/// The tick chain with telemetry handles on the hot path: one counter add
/// and one gauge store per event. Mirrors how real components are
/// instrumented — the handles live in a long-lived object (like
/// sim::Core / fpga::Pcap members) and the event captures a pointer to
/// it, so the closure stays at Tick's size. Arg(0) leaves the handles
/// null (registry disabled — the shipping default), Arg(1) binds them to
/// registry cells. Both paths must stay allocation-free, and the disabled
/// path must hold the BM_SimulatorEventRate event rate (<=3% overhead,
/// pinned by scripts/bench_substrate.sh into BENCH_substrate.json).
struct MeteredLoop {
  sim::Simulator* sim;
  int remaining = 0;
  obs::CounterHandle events;
  obs::GaugeHandle depth;
  void tick() {
    events.add();
    depth.set(static_cast<double>(remaining));
    if (--remaining > 0) {
      sim->schedule(100, [this] { tick(); });
    }
  }
};

void BM_MetricsOverhead(benchmark::State& state) {
  constexpr int kEvents = 10000;
  const bool enabled = state.range(0) != 0;
  obs::MetricsRegistry registry;
  sim::Simulator sim;
  MeteredLoop loop{&sim};
  if (enabled) {
    loop.events =
        obs::CounterHandle(&registry.counter("vs_bench_events_total"));
    loop.depth = obs::GaugeHandle(&registry.gauge("vs_bench_depth"));
  }
  auto run_chain = [&] {
    loop.remaining = kEvents;
    sim.schedule(0, [&loop] { loop.tick(); });
    sim.run();
  };
  run_chain();  // warm the queue's slab and node heap

  // Steady-state allocation probe (see BM_EventQueueScheduleAndPop).
  std::int64_t probe_before = alloc_calls();
  for (int rep = 0; rep < 10; ++rep) run_chain();
  double steady_allocs = static_cast<double>(alloc_calls() - probe_before);

  for (auto _ : state) {
    run_chain();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = steady_allocs / (10.0 * kEvents);
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1);

/// The tick chain with the causal-observability guards on the hot path:
/// the phase-accounting branch (one bool test; enabled, an integer-ns
/// charge into a per-phase account — the bookkeeping BoardRuntime does on
/// every state change) and the hub-channel branch (one null-pointer test;
/// bound, the trace_on()/journal_on() gates that rare lifecycle sites
/// check before emitting). Arg(0) is the shipping default — accounting
/// off, no hub — and must hold the BM_SimulatorEventRate event rate
/// (<=3% overhead, pinned by scripts/bench_substrate.sh into
/// BENCH_substrate.json). Arg(1) enables accounting and binds a channel
/// with both streams dark, the instrumented-run steady state between
/// lifecycle events. Both paths must stay allocation-free.
struct PhasedLoop {
  sim::Simulator* sim = nullptr;
  int remaining = 0;
  bool acct = false;
  obs::TraceChannel* obs = nullptr;
  sim::SimTime mark = 0;
  std::array<sim::SimDuration, runtime::kAppPhaseCount> account{};
  void tick() {
    if (acct) {
      account[static_cast<std::size_t>(remaining) %
              runtime::kAppPhaseCount] += sim->now() - mark;
      mark = sim->now();
    }
    if (obs != nullptr && (obs->trace_on() || obs->journal_on())) {
      obs->journal(sim->now(), obs::JournalEvent::kBind, "bench");
    }
    if (--remaining > 0) {
      sim->schedule(100, [this] { tick(); });
    }
  }
};

void BM_PhaseAccountingOverhead(benchmark::State& state) {
  constexpr int kEvents = 10000;
  const bool enabled = state.range(0) != 0;
  obs::ClusterTraceHub hub;  // streams stay dark: guard cost only
  sim::Simulator sim;
  PhasedLoop loop{&sim};
  if (enabled) {
    loop.acct = true;
    loop.obs = &hub.channel("bench");
  }
  auto run_chain = [&] {
    loop.remaining = kEvents;
    loop.mark = sim.now();
    sim.schedule(0, [&loop] { loop.tick(); });
    sim.run();
  };
  run_chain();  // warm the queue's slab and node heap

  std::int64_t probe_before = alloc_calls();
  for (int rep = 0; rep < 10; ++rep) run_chain();
  double steady_allocs = static_cast<double>(alloc_calls() - probe_before);

  for (auto _ : state) {
    run_chain();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  benchmark::DoNotOptimize(loop.account);
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = steady_allocs / (10.0 * kEvents);
}
BENCHMARK(BM_PhaseAccountingOverhead)->Arg(0)->Arg(1);

void BM_PcapQueueing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Core core(sim, "c0");
    fpga::Pcap pcap(sim);
    for (int i = 0; i < 100; ++i) {
      pcap.request(sim::ms(1), core, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(pcap.stats().loads_completed);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PcapQueueing);

void BM_OptimalLittleSlots(benchmark::State& state) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  for (auto _ : state) {
    for (const auto& app : suite) {
      benchmark::DoNotOptimize(
          apps::optimal_little_slots(app, 17, params, 8));
    }
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_OptimalLittleSlots);

void BM_MakeBigUnits(benchmark::State& state) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  for (auto _ : state) {
    for (const auto& app : suite) {
      benchmark::DoNotOptimize(apps::make_big_units(app, 17, params));
    }
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_MakeBigUnits);

/// Simulation rate for a full 20-app standard sequence per system. Reports
/// how many simulated seconds one wall-clock second covers.
void BM_FullSequence(benchmark::State& state) {
  auto kind = static_cast<metrics::SystemKind>(state.range(0));
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  util::Rng rng(7);
  auto seq = workload::generate_sequence(config, rng);
  double sim_seconds = 0;
  for (auto _ : state) {
    auto r = metrics::run_single_board(kind, suite, seq);
    sim_seconds += sim::to_seconds(r.makespan);
    benchmark::DoNotOptimize(r.response.mean);
  }
  state.SetLabel(metrics::system_name(kind));
  state.counters["sim_s_per_s"] = benchmark::Counter(
      sim_seconds, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSequence)->DenseRange(0, metrics::kSystemCount - 1);

}  // namespace

BENCHMARK_MAIN();
