// Micro-benchmarks of the simulation substrate and control-plane
// algorithms, via google-benchmark: event-queue throughput, PCAP queueing,
// the optimal-slot ILP approximation, the slot-allocation pass, and
// whole-sequence simulation rates for each scheduler.
#include <benchmark/benchmark.h>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "metrics/experiment.h"
#include "sim/core.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace {

using namespace vs;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 2654435761u) % 1000000, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_SimulatorEventRate(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule(100, tick);
    };
    sim.schedule(0, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventRate);

void BM_PcapQueueing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Core core(sim, "c0");
    fpga::Pcap pcap(sim);
    for (int i = 0; i < 100; ++i) {
      pcap.request(sim::ms(1), core, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(pcap.stats().loads_completed);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PcapQueueing);

void BM_OptimalLittleSlots(benchmark::State& state) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  for (auto _ : state) {
    for (const auto& app : suite) {
      benchmark::DoNotOptimize(
          apps::optimal_little_slots(app, 17, params, 8));
    }
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_OptimalLittleSlots);

void BM_MakeBigUnits(benchmark::State& state) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  for (auto _ : state) {
    for (const auto& app : suite) {
      benchmark::DoNotOptimize(apps::make_big_units(app, 17, params));
    }
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_MakeBigUnits);

/// Simulation rate for a full 20-app standard sequence per system. Reports
/// how many simulated seconds one wall-clock second covers.
void BM_FullSequence(benchmark::State& state) {
  auto kind = static_cast<metrics::SystemKind>(state.range(0));
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  util::Rng rng(7);
  auto seq = workload::generate_sequence(config, rng);
  double sim_seconds = 0;
  for (auto _ : state) {
    auto r = metrics::run_single_board(kind, suite, seq);
    sim_seconds += sim::to_seconds(r.makespan);
    benchmark::DoNotOptimize(r.response.mean);
  }
  state.SetLabel(metrics::system_name(kind));
  state.counters["sim_s_per_s"] = benchmark::Counter(
      sim_seconds, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSequence)->DenseRange(0, metrics::kSystemCount - 1);

}  // namespace

BENCHMARK_MAIN();
