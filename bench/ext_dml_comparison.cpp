// Extension: the DML scheduler (TC'22, the paper's ref [14]) alongside the
// six Fig 5 systems. DML contributed the ILP slot-count allocation that
// Nimblock and VersaSlot reuse; adding it shows the lineage:
// FCFS/RR (naive) -> DML (pipelined, backfilled) -> Nimblock (+priority,
// +preemption) -> VersaSlot (+dual-core, +Big.Little).
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "util/table.h"
#include "workload/generator.h"

int main() {
  using namespace vs;

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  std::cout << "=== Extension: seven-system comparison including DML "
               "===\n5 sequences x 20 apps per condition\n\n";

  for (int ci = 0; ci < workload::kCongestionCount; ++ci) {
    auto congestion = static_cast<workload::Congestion>(ci);
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = 20;
    auto sequences = workload::generate_sequences(config, 5, 2025);

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table({"system", "mean ms", "P95 ms", "P99 ms"});
    for (int k = 0; k < metrics::kSystemCountExtended; ++k) {
      auto agg = metrics::aggregate(static_cast<metrics::SystemKind>(k),
                                    suite, sequences);
      table.add_row();
      table.cell(agg.system);
      table.cell(agg.mean_response_ms, 1);
      table.cell(agg.p95_ms, 1);
      table.cell(agg.p99_ms, 1);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(expected ordering: DML between the naive single-slot "
               "systems and Nimblock)\n";
  return 0;
}
