// Extension: fault resilience of the two-board cluster.
//
// A stress workload runs under increasing board-crash hazard rates (with
// proportional link-flap and slot-SEU hazards, plus scripted crashes of
// the initially active board early in the run and of the failover board
// mid-run, so every nonzero rate is guaranteed direct hits on both fabric
// configurations — including Big-slot bundles). Four failure-handling
// modes are compared (filter with --recovery NAME):
//
//   no-recovery  -- displaced apps die with the board
//   kill-restart -- displaced apps restart from scratch on a survivor
//   recovery     -- paused apps live-migrate with their progress (the
//                   VersaSlot migration path reused as failure recovery)
//   checkpoint   -- recovery plus periodic DDR checkpoints: bundled apps
//                   and apps without committed progress restore to their
//                   last snapshot instead of restarting from scratch
//   ckpt-delta   -- checkpoint, but passes copy only DDR regions dirtied
//                   since the last snapshot (base-plus-delta chains with
//                   periodic compaction) instead of the whole image
//
// Checkpoint knobs: --ckpt-interval MS (VS_CKPT_INTERVAL) sets the pass
// cadence and --ckpt-granularity BYTES (VS_CKPT_GRANULARITY) the dirty-
// region size, so sweeps can trade snapshot overhead against re-run
// window without recompiling. Per-mode checkpoint/migration byte and
// downtime accounting is exported to ext_fault_resilience.csv.
//
// Because lost apps never complete, plain mean response over completions
// would reward dropping work. The headline metric is therefore the
// *censored* mean response: apps not completed by the evaluation horizon
// T_eval count as (T_eval - arrival). Inflation is each mode's censored
// mean relative to its own fault-free (rate 0) run. The (rate x mode x
// sequence) grid runs on metrics::SweepRunner::map (--jobs N / VS_JOBS);
// the fault schedule for a given rate and sequence is seed-derived, so it
// is identical across the three modes and any worker count.
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "faults/scenario.h"
#include "metrics/experiment.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));
  const int apps_per_seq = static_cast<int>(args.get_int("apps", 40));
  const int n_seqs_arg = static_cast<int>(args.get_int("seqs", 2));
  const std::string metrics_out = obs::resolve_metrics_out(&args);
  // Causal trace / run journal capture (--trace-out FILE or VS_TRACE,
  // --journal-out FILE or VS_JOURNAL): same instrumented replay as
  // --metrics-out, with flow events stitching crash -> evacuation ->
  // readmission across the two boards.
  const std::string trace_out = obs::resolve_trace_out(&args);
  const std::string journal_out = obs::resolve_journal_out(&args);
  // Checkpoint knobs (--flag wins, then VS_* env, then the policy default).
  const double ckpt_interval_ms =
      util::resolve_double(&args, "ckpt-interval", "VS_CKPT_INTERVAL", 25.0);
  const std::int64_t ckpt_granularity = util::resolve_int(
      &args, "ckpt-granularity", "VS_CKPT_GRANULARITY", 64 * 1024);

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = apps_per_seq;
  auto sequences = workload::generate_sequences(config, n_seqs_arg, 2025);
  const std::size_t n_seqs = sequences.size();

  // Hazard horizon and censoring point. Lost apps are charged as if they
  // completed exactly at T_eval; completed apps always count their true
  // response, so the metric never rewards dropping work.
  const sim::SimTime t_eval = sim::seconds(120.0);

  const double crash_rates[] = {0.0, 0.02, 0.05, 0.1};  // per board-second
  struct Mode {
    const char* name;
    bool enable_recovery;
    bool kill_restart;
    bool checkpoint;
    bool delta;
  };
  const std::vector<Mode> all_modes = {
      {"no-recovery", false, false, false, false},
      {"kill-restart", true, true, false, false},
      {"recovery", true, false, false, false},
      {"checkpoint", true, false, true, false},
      {"ckpt-delta", true, false, true, true},
  };
  const std::string mode_filter = args.get("recovery");
  std::vector<Mode> modes;
  for (const Mode& m : all_modes) {
    if (mode_filter.empty() || mode_filter == m.name) modes.push_back(m);
  }
  if (modes.empty()) {
    std::cerr << "unknown --recovery mode: " << mode_filter << "\n";
    return 1;
  }
  // Load-aware admission throttle during recovery (--throttle defer|shed):
  // while displaced apps wait in the readmission queue, new arrivals are
  // deferred behind them or shed. Off by default — the committed CSV and
  // all tables are byte-identical to a throttle-free build.
  const std::string throttle_name = args.get("throttle");
  cluster::RecoveryOptions::Throttle throttle =
      cluster::RecoveryOptions::Throttle::kOff;
  if (throttle_name == "defer") {
    throttle = cluster::RecoveryOptions::Throttle::kDefer;
  } else if (throttle_name == "shed") {
    throttle = cluster::RecoveryOptions::Throttle::kShed;
  } else if (!throttle_name.empty() && throttle_name != "off") {
    std::cerr << "unknown --throttle mode: " << throttle_name << "\n";
    return 1;
  }

  // Correlated failure-domain sweep (--racks N, optional --rack-rate R,
  // --kernel-jobs W / VS_KERNEL_JOBS): N racks of one OL + one BL board
  // each — every rack spans both pools (a shared PSU feeding the failover
  // pair), so a rack event is the worst case for spare-pool failover: the
  // origin AND its preferred destination die inside one detection window.
  // Rack events fire from the "rack/<domain>" hazard streams at increasing
  // per-rack rates, plus a scripted rack event on rack 0 at t=2s so every
  // nonzero rate lands a guaranteed common-mode hit. The recovery mode
  // runs with the requested throttle (default defer). Results go to
  // ext_fault_resilience_rack.csv; the default independent-hazard sweep
  // above (and its committed CSV) is untouched by this path.
  const int racks = static_cast<int>(args.get_int("racks", 0));
  const int kernel_jobs = util::resolve_kernel_jobs(&args);
  if (racks > 0) {
    std::vector<double> rack_rates = {0.0, 0.02, 0.05, 0.1};  // per rack-s
    const double rate_arg = args.get_double("rack-rate", -1.0);
    if (rate_arg >= 0.0) rack_rates = {0.0, rate_arg};
    if (throttle == cluster::RecoveryOptions::Throttle::kOff &&
        throttle_name.empty()) {
      throttle = cluster::RecoveryOptions::Throttle::kDefer;
    }
    auto rack_scenario = [&](double rate, std::size_t seq) {
      faults::FaultScenario s;
      s.seed = 9000 + static_cast<std::uint64_t>(seq);
      s.horizon = t_eval;
      for (int r = 0; r < racks; ++r) {
        faults::FailureDomain dom;
        dom.name = "r" + std::to_string(r);
        dom.boards = {r, racks + r};  // OL_r and BL_r share the feed
        // Rack 0 is a clean whole-rack loss; later racks stagger their
        // member crashes inside the detection window and give each board
        // a redundant-feed survival chance, so the sweep covers jittered
        // batching and partial-rack outcomes too.
        if (r > 0) {
          dom.jitter = sim::ms(1.0);  // < detection latency (5 ms)
          dom.survival_probability = 0.25;
        }
        s.domains.push_back(std::move(dom));
      }
      if (rate <= 0.0) return s;  // domains alone schedule nothing
      s.hazards.rack_event_per_s = rate;
      s.hazards.link_flap_per_s = rate;
      s.timeline.push_back(
          {sim::seconds(2.0), faults::FaultKind::kRackEvent, 0, -1});
      return s;
    };
    std::cout << "=== Extension: rack-correlated fault resilience (" << racks
              << " racks x 2 boards, " << apps_per_seq << " stress apps, "
              << n_seqs << " sequences pooled; censored at t="
              << sim::to_seconds(t_eval) << "s) ===\n\n";
    auto rack_cells = runner.map<metrics::ClusterRunResult>(
        rack_rates.size() * modes.size() * n_seqs,
        [&](std::size_t i) {
          const double rate = rack_rates[i / (modes.size() * n_seqs)];
          const Mode& mode = modes[(i / n_seqs) % modes.size()];
          const std::size_t seq = i % n_seqs;
          cluster::ClusterOptions options;
          options.boards_per_config = racks;
          options.kernel_workers = kernel_jobs;
          options.faults = rack_scenario(rate, seq);
          options.recovery.enable_recovery = mode.enable_recovery;
          options.recovery.kill_restart = mode.kill_restart;
          options.checkpoint.enabled = mode.checkpoint;
          options.checkpoint.delta = mode.delta;
          options.checkpoint.interval = sim::ms(ckpt_interval_ms);
          options.checkpoint.granularity = ckpt_granularity;
          // Only recovering modes throttle: no-recovery/kill-restart keep
          // their baseline admission, matching the mode definitions above.
          options.recovery.throttle =
              mode.enable_recovery && !mode.kill_restart
                  ? throttle
                  : cluster::RecoveryOptions::Throttle::kOff;
          return metrics::run_cluster(suite, sequences[seq], options);
        });
    util::Table rtable({"rack/s", "mode", "done", "censored ms", "inflation",
                        "racks hit", "spare exh", "evac", "restart", "lost",
                        "shed", "MTTR ms", "avail"});
    util::CsvWriter rcsv("ext_fault_resilience_rack.csv");
    rcsv.header({"rack_rate", "mode", "completed", "submitted",
                 "censored_mean_ms", "inflation", "rack_events",
                 "spare_exhausted", "evacuated", "ckpt_restored", "restarted",
                 "lost", "shed", "deferred", "arrivals_shed", "readmissions",
                 "mttr_ms", "availability", "switches"});
    std::size_t rcursor = 0;
    std::vector<double> rbaseline(modes.size(), 0.0);
    for (std::size_t ri = 0; ri < rack_rates.size(); ++ri) {
      for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        double censored_sum_ms = 0;
        int done = 0, submitted = 0, switches = 0;
        cluster::RecoveryStats stats;
        double avail = 0;
        for (std::size_t si = 0; si < n_seqs; ++si) {
          const auto& r = rack_cells[rcursor++];
          done += r.completed;
          submitted += r.submitted;
          switches += static_cast<int>(r.switches.size());
          for (double ms : r.response_ms) censored_sum_ms += ms;
          std::multiset<sim::SimTime> open;
          for (const apps::AppArrival& a : sequences[si]) {
            open.insert(a.arrival);
          }
          for (const runtime::CompletedApp& c : r.apps) {
            auto it = open.find(c.arrival);
            if (it != open.end()) open.erase(it);
          }
          for (sim::SimTime arrival : open) {
            censored_sum_ms += sim::to_ms(t_eval - arrival);
          }
          stats.rack_events += r.recovery.rack_events;
          stats.spare_exhausted += r.recovery.spare_exhausted;
          stats.apps_evacuated += r.recovery.apps_evacuated;
          stats.apps_checkpoint_restored +=
              r.recovery.apps_checkpoint_restored;
          stats.apps_restarted += r.recovery.apps_restarted;
          stats.apps_lost += r.recovery.apps_lost;
          stats.apps_shed += r.recovery.apps_shed;
          stats.arrivals_deferred += r.recovery.arrivals_deferred;
          stats.arrivals_shed += r.recovery.arrivals_shed;
          stats.readmissions += r.recovery.readmissions;
          stats.mttr_total += r.recovery.mttr_total;
          stats.mttr_count += r.recovery.mttr_count;
          avail += r.availability;
        }
        avail /= static_cast<double>(n_seqs);
        double censored_mean =
            censored_sum_ms / static_cast<double>(submitted);
        if (rack_rates[ri] == 0.0) rbaseline[mi] = censored_mean;
        double inflation =
            rbaseline[mi] > 0 ? censored_mean / rbaseline[mi] : 0;
        rtable.add_row();
        rtable.cell(rack_rates[ri], 2);
        rtable.cell(modes[mi].name);
        rtable.cell(std::to_string(done) + "/" + std::to_string(submitted));
        rtable.cell(censored_mean, 1);
        rtable.cell(inflation, 3);
        rtable.cell(static_cast<std::int64_t>(stats.rack_events));
        rtable.cell(static_cast<std::int64_t>(stats.spare_exhausted));
        rtable.cell(static_cast<std::int64_t>(stats.apps_evacuated));
        rtable.cell(static_cast<std::int64_t>(stats.apps_restarted));
        rtable.cell(static_cast<std::int64_t>(stats.apps_lost));
        rtable.cell(static_cast<std::int64_t>(stats.apps_shed +
                                              stats.arrivals_shed));
        rtable.cell(stats.mttr_ms_mean(), 1);
        rtable.cell(avail, 4);
        rcsv.begin_row();
        rcsv.field(rack_rates[ri]);
        rcsv.field(std::string(modes[mi].name));
        rcsv.field(done);
        rcsv.field(submitted);
        rcsv.field(censored_mean);
        rcsv.field(inflation);
        rcsv.field(stats.rack_events);
        rcsv.field(stats.spare_exhausted);
        rcsv.field(stats.apps_evacuated);
        rcsv.field(stats.apps_checkpoint_restored);
        rcsv.field(stats.apps_restarted);
        rcsv.field(stats.apps_lost);
        rcsv.field(stats.apps_shed);
        rcsv.field(stats.arrivals_deferred);
        rcsv.field(stats.arrivals_shed);
        rcsv.field(stats.readmissions);
        rcsv.field(stats.mttr_ms_mean());
        rcsv.field(avail);
        rcsv.field(switches);
        rcsv.end_row();
      }
    }
    rtable.print(std::cout);
    std::cout << "\n(every rack feeds one board of each pool, so a rack "
                 "event kills the active board and its failover target "
                 "together; batched detection coalesces the member crashes "
                 "into one recovery action, and when no spare pool survives "
                 "the displaced apps queue for deterministic FIFO "
                 "re-admission while the throttle holds fresh arrivals "
                 "behind them)\n"
                 "Series written to ext_fault_resilience_rack.csv\n";
    if (!metrics_out.empty()) {
      // Instrumented replay of the harshest cell (highest rack rate, full
      // recovery + throttle) so the export carries the rack-event and
      // spare-exhaustion instruments.
      obs::Telemetry telemetry;
      cluster::ClusterOptions options;
      options.boards_per_config = racks;
      options.kernel_workers = kernel_jobs;
      options.faults = rack_scenario(rack_rates.back(), 0);
      options.recovery.throttle = throttle;
      (void)metrics::run_cluster(suite, sequences[0], options,
                                 sim::seconds(36000.0), &telemetry);
      telemetry.info().config.emplace_back("bench", "ext_fault_resilience");
      telemetry.info().config.emplace_back("mode", "rack-sweep");
      telemetry.write_outputs(metrics_out);
      std::cout << "Telemetry written to " << metrics_out
                << ".{prom,jsonl,report.json}\n";
    }
    return 0;
  }

  auto scenario_for = [&](double rate, std::size_t seq) {
    faults::FaultScenario s;
    if (rate <= 0.0) return s;  // disabled: no fault plane at all
    s.seed = 7000 + static_cast<std::uint64_t>(seq);
    s.hazards.board_crash_per_s = rate;
    s.hazards.link_flap_per_s = rate;
    s.hazards.slot_seu_per_s = 2.0 * rate;
    s.horizon = t_eval;
    // Guaranteed direct hits, identical across modes: the initial pool is
    // Only.Little, so plane board 0 (OL0) is the active board 2 s into the
    // congested phase; the crash fails the cluster over to Big.Little, so
    // by 10 s plane board 1 (BL0) is running the backlog — including
    // Big-slot bundles mid-batch, the case only a checkpoint can save.
    s.timeline.push_back(
        {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 0, -1});
    s.timeline.push_back(
        {sim::seconds(10.0), faults::FaultKind::kBoardCrash, 1, -1});
    return s;
  };

  std::cout << "=== Extension: fault resilience (" << apps_per_seq
            << " stress apps, " << n_seqs
            << " sequences pooled; censored at t="
            << sim::to_seconds(t_eval) << "s) ===\n\n";

  auto cells = runner.map<metrics::ClusterRunResult>(
      std::size(crash_rates) * modes.size() * n_seqs,
      [&](std::size_t i) {
        const double rate = crash_rates[i / (modes.size() * n_seqs)];
        const Mode& mode = modes[(i / n_seqs) % modes.size()];
        const std::size_t seq = i % n_seqs;
        cluster::ClusterOptions options;
        options.faults = scenario_for(rate, seq);
        options.recovery.enable_recovery = mode.enable_recovery;
        options.recovery.kill_restart = mode.kill_restart;
        // Checkpointing stays on at rate 0 too: the mode's fault-free
        // baseline carries the snapshot overhead, so the inflation column
        // never hides the checkpoint cost.
        options.checkpoint.enabled = mode.checkpoint;
        options.checkpoint.delta = mode.delta;
        options.checkpoint.interval = sim::ms(ckpt_interval_ms);
        options.checkpoint.granularity = ckpt_granularity;
        options.recovery.throttle = throttle;
        return metrics::run_cluster(suite, sequences[seq], options);
      });

  util::Table table({"crash/s", "mode", "done", "censored ms", "inflation",
                     "evac", "ckpt", "restart", "lost", "MTTR ms", "avail",
                     "ckpt MB"});
  util::CsvWriter csv("ext_fault_resilience.csv");
  csv.header({"crash_rate", "mode", "completed", "submitted",
              "censored_mean_ms", "inflation", "evacuated", "ckpt_restored",
              "restarted", "lost", "mttr_ms", "availability", "ckpt_bases",
              "ckpt_deltas", "ckpt_compactions", "ckpt_base_bytes",
              "ckpt_delta_bytes", "ckpt_total_bytes", "ckpt_dirty_regions",
              "ckpt_skipped_clean", "ckpt_skipped_empty", "switches",
              "migration_precopy_rounds", "migration_precopy_bytes",
              "migration_stopcopy_bytes", "migration_downtime_ms"});
  std::size_t cursor = 0;
  // Per-mode fault-free baseline for the inflation column (filled by the
  // rate 0 pass, which the grid orders first).
  std::vector<double> baseline_ms(modes.size(), 0.0);
  bool ordering_ok = true;
  std::int64_t total_deferred = 0, total_arrivals_shed = 0;
  for (std::size_t ri = 0; ri < std::size(crash_rates); ++ri) {
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      double censored_sum_ms = 0;
      int done = 0, submitted = 0;
      cluster::RecoveryStats stats;
      runtime::CheckpointStats ckpt;
      int switches = 0, precopy_rounds = 0;
      std::int64_t precopy_bytes = 0, stopcopy_bytes = 0;
      double downtime_ms = 0;
      double avail = 0;
      for (std::size_t si = 0; si < n_seqs; ++si) {
        const auto& r = cells[cursor++];
        ckpt += r.checkpoint;
        switches += static_cast<int>(r.switches.size());
        for (const cluster::SwitchEvent& e : r.switches) {
          precopy_rounds += e.precopy_rounds;
          precopy_bytes += e.precopy_bytes;
          stopcopy_bytes += e.stopcopy_bytes;
          downtime_ms += sim::to_ms(e.downtime);
        }
        done += r.completed;
        submitted += r.submitted;
        for (double ms : r.response_ms) censored_sum_ms += ms;
        // Charge every app the run did not complete with (T_eval - arrival):
        // match completions against the sequence's arrival multiset.
        std::multiset<sim::SimTime> open;
        for (const apps::AppArrival& a : sequences[si]) {
          open.insert(a.arrival);
        }
        for (const runtime::CompletedApp& c : r.apps) {
          auto it = open.find(c.arrival);
          if (it != open.end()) open.erase(it);
        }
        for (sim::SimTime arrival : open) {
          censored_sum_ms += sim::to_ms(t_eval - arrival);
        }
        stats.apps_evacuated += r.recovery.apps_evacuated;
        stats.apps_checkpoint_restored += r.recovery.apps_checkpoint_restored;
        stats.apps_restarted += r.recovery.apps_restarted;
        stats.apps_lost += r.recovery.apps_lost;
        stats.apps_shed += r.recovery.apps_shed;
        stats.boards_crashed += r.recovery.boards_crashed;
        stats.mttr_total += r.recovery.mttr_total;
        stats.mttr_count += r.recovery.mttr_count;
        stats.arrivals_deferred += r.recovery.arrivals_deferred;
        stats.arrivals_shed += r.recovery.arrivals_shed;
        avail += r.availability;
      }
      avail /= static_cast<double>(n_seqs);
      total_deferred += stats.arrivals_deferred;
      total_arrivals_shed += stats.arrivals_shed;
      double censored_mean = censored_sum_ms / static_cast<double>(submitted);
      if (crash_rates[ri] == 0.0) baseline_ms[mi] = censored_mean;
      if (baseline_ms[mi] <= 0) ordering_ok = false;
      double inflation =
          baseline_ms[mi] > 0 ? censored_mean / baseline_ms[mi] : 0;
      table.add_row();
      table.cell(crash_rates[ri], 2);
      table.cell(modes[mi].name);
      table.cell(std::to_string(done) + "/" + std::to_string(submitted));
      table.cell(censored_mean, 1);
      table.cell(inflation, 3);
      table.cell(static_cast<std::int64_t>(stats.apps_evacuated));
      table.cell(static_cast<std::int64_t>(stats.apps_checkpoint_restored));
      table.cell(static_cast<std::int64_t>(stats.apps_restarted));
      table.cell(static_cast<std::int64_t>(stats.apps_lost));
      table.cell(stats.mttr_ms_mean(), 1);
      table.cell(avail, 4);
      table.cell(static_cast<double>(ckpt.total_bytes()) / 1e6, 2);
      csv.begin_row();
      csv.field(crash_rates[ri]);
      csv.field(std::string(modes[mi].name));
      csv.field(done);
      csv.field(submitted);
      csv.field(censored_mean);
      csv.field(inflation);
      csv.field(stats.apps_evacuated);
      csv.field(stats.apps_checkpoint_restored);
      csv.field(stats.apps_restarted);
      csv.field(stats.apps_lost);
      csv.field(stats.mttr_ms_mean());
      csv.field(avail);
      csv.field(ckpt.bases);
      csv.field(ckpt.deltas);
      csv.field(ckpt.compactions);
      csv.field(ckpt.base_bytes);
      csv.field(ckpt.delta_bytes);
      csv.field(ckpt.total_bytes());
      csv.field(ckpt.dirty_regions);
      csv.field(ckpt.skipped_clean);
      csv.field(ckpt.skipped_empty);
      csv.field(switches);
      csv.field(precopy_rounds);
      csv.field(precopy_bytes);
      csv.field(stopcopy_bytes);
      csv.field(downtime_ms);
      csv.end_row();
    }
  }
  table.print(std::cout);
  if (throttle != cluster::RecoveryOptions::Throttle::kOff) {
    std::cout << "\nAdmission throttle (" << throttle_name
              << "): " << total_deferred << " arrivals deferred behind the "
              << "readmission queue, " << total_arrivals_shed << " shed\n";
  }
  if (!ordering_ok) {
    std::cout << "\nWARNING: rate-0 baseline missing; inflation column "
                 "invalid\n";
  }
  std::cout << "\n(recovery evacuates every app with DDR-resident progress "
               "over the Aurora link and restarts only the rest, so its "
               "censored mean tracks the fault-free run; checkpoint "
               "additionally restores bundled apps to their last periodic "
               "DDR snapshot, bounding the re-run window to one interval; "
               "ckpt-delta keeps the same restore guarantee but copies only "
               "dirtied DDR regions per pass, so its checkpoint volume — "
               "the ckpt MB column — drops well below whole-state at the "
               "same cadence while matching its censored means and MTTR; "
               "note that inflation divides by the mode's own fault-free "
               "baseline, and delta's cheaper passes lower that baseline, "
               "so equal recovery quality reads as an equal-or-slightly-"
               "higher ratio; no-recovery forfeits every app caught on the "
               "crashed board and pays T_eval for each)\n"
               "Series written to ext_fault_resilience.csv\n";

  // Optional instrumented replay (--metrics-out PREFIX / --trace-out FILE /
  // --journal-out FILE): re-run the harshest recovery cell with telemetry
  // and/or the causal trace hub attached, so the run report carries the
  // fault counters, evacuation latency, MTTR and per-board availability,
  // and the trace/journal capture the crash -> evacuation -> readmission
  // causality. Phase accounting rides the trace/journal flags.
  if (!metrics_out.empty() || !trace_out.empty() || !journal_out.empty()) {
    obs::Telemetry telemetry;
    obs::ClusterTraceHub hub;
    hub.enable_trace(!trace_out.empty());
    hub.enable_journal(!journal_out.empty());
    cluster::ClusterOptions options;
    options.faults =
        scenario_for(crash_rates[std::size(crash_rates) - 1], 0);
    options.recovery.enable_recovery = true;
    options.checkpoint.enabled = true;
    options.checkpoint.delta = true;
    options.checkpoint.interval = sim::ms(ckpt_interval_ms);
    options.checkpoint.granularity = ckpt_granularity;
    options.migration.precopy = true;
    if (!trace_out.empty() || !journal_out.empty()) {
      options.hub = &hub;
      options.phase_accounting = true;
    }
    (void)metrics::run_cluster(suite, sequences[0], options,
                               sim::seconds(36000.0),
                               metrics_out.empty() ? nullptr : &telemetry);
    if (!metrics_out.empty()) {
      telemetry.info().config.emplace_back("bench", "ext_fault_resilience");
      telemetry.info().config.emplace_back("mode", "ckpt-delta+precopy");
      telemetry.write_outputs(metrics_out);
      std::cout << "Telemetry written to " << metrics_out
                << ".{prom,jsonl,report.json}\n";
    }
    if (!trace_out.empty()) {
      hub.write_chrome_trace_file(trace_out);
      std::cout << "Chrome trace written to " << trace_out << "\n";
    }
    if (!journal_out.empty()) {
      hub.write_journal_file(journal_out);
      std::cout << "Run journal written to " << journal_out << "\n";
    }
  }
  return 0;
}
