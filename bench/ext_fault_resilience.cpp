// Extension: fault resilience of the two-board cluster.
//
// A stress workload runs under increasing board-crash hazard rates (with
// proportional link-flap and slot-SEU hazards, plus scripted crashes of
// the initially active board early in the run and of the failover board
// mid-run, so every nonzero rate is guaranteed direct hits on both fabric
// configurations — including Big-slot bundles). Four failure-handling
// modes are compared (filter with --recovery NAME):
//
//   no-recovery  -- displaced apps die with the board
//   kill-restart -- displaced apps restart from scratch on a survivor
//   recovery     -- paused apps live-migrate with their progress (the
//                   VersaSlot migration path reused as failure recovery)
//   checkpoint   -- recovery plus periodic DDR checkpoints: bundled apps
//                   and apps without committed progress restore to their
//                   last snapshot instead of restarting from scratch
//   ckpt-delta   -- checkpoint, but passes copy only DDR regions dirtied
//                   since the last snapshot (base-plus-delta chains with
//                   periodic compaction) instead of the whole image
//
// Checkpoint knobs: --ckpt-interval MS (VS_CKPT_INTERVAL) sets the pass
// cadence and --ckpt-granularity BYTES (VS_CKPT_GRANULARITY) the dirty-
// region size, so sweeps can trade snapshot overhead against re-run
// window without recompiling. Per-mode checkpoint/migration byte and
// downtime accounting is exported to ext_fault_resilience.csv.
//
// Because lost apps never complete, plain mean response over completions
// would reward dropping work. The headline metric is therefore the
// *censored* mean response: apps not completed by the evaluation horizon
// T_eval count as (T_eval - arrival). Inflation is each mode's censored
// mean relative to its own fault-free (rate 0) run. The (rate x mode x
// sequence) grid runs on metrics::SweepRunner::map (--jobs N / VS_JOBS);
// the fault schedule for a given rate and sequence is seed-derived, so it
// is identical across the three modes and any worker count.
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "faults/scenario.h"
#include "metrics/experiment.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));
  const int apps_per_seq = static_cast<int>(args.get_int("apps", 40));
  const int n_seqs_arg = static_cast<int>(args.get_int("seqs", 2));
  const std::string metrics_out = obs::resolve_metrics_out(&args);
  // Causal trace / run journal capture (--trace-out FILE or VS_TRACE,
  // --journal-out FILE or VS_JOURNAL): same instrumented replay as
  // --metrics-out, with flow events stitching crash -> evacuation ->
  // readmission across the two boards.
  const std::string trace_out = obs::resolve_trace_out(&args);
  const std::string journal_out = obs::resolve_journal_out(&args);
  // Checkpoint knobs (--flag wins, then VS_* env, then the policy default).
  const double ckpt_interval_ms =
      util::resolve_double(&args, "ckpt-interval", "VS_CKPT_INTERVAL", 25.0);
  const std::int64_t ckpt_granularity = util::resolve_int(
      &args, "ckpt-granularity", "VS_CKPT_GRANULARITY", 64 * 1024);

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = apps_per_seq;
  auto sequences = workload::generate_sequences(config, n_seqs_arg, 2025);
  const std::size_t n_seqs = sequences.size();

  // Hazard horizon and censoring point. Lost apps are charged as if they
  // completed exactly at T_eval; completed apps always count their true
  // response, so the metric never rewards dropping work.
  const sim::SimTime t_eval = sim::seconds(120.0);

  const double crash_rates[] = {0.0, 0.02, 0.05, 0.1};  // per board-second
  struct Mode {
    const char* name;
    bool enable_recovery;
    bool kill_restart;
    bool checkpoint;
    bool delta;
  };
  const std::vector<Mode> all_modes = {
      {"no-recovery", false, false, false, false},
      {"kill-restart", true, true, false, false},
      {"recovery", true, false, false, false},
      {"checkpoint", true, false, true, false},
      {"ckpt-delta", true, false, true, true},
  };
  const std::string mode_filter = args.get("recovery");
  std::vector<Mode> modes;
  for (const Mode& m : all_modes) {
    if (mode_filter.empty() || mode_filter == m.name) modes.push_back(m);
  }
  if (modes.empty()) {
    std::cerr << "unknown --recovery mode: " << mode_filter << "\n";
    return 1;
  }
  // Load-aware admission throttle during recovery (--throttle defer|shed):
  // while displaced apps wait in the readmission queue, new arrivals are
  // deferred behind them or shed. Off by default — the committed CSV and
  // all tables are byte-identical to a throttle-free build.
  const std::string throttle_name = args.get("throttle");
  cluster::RecoveryOptions::Throttle throttle =
      cluster::RecoveryOptions::Throttle::kOff;
  if (throttle_name == "defer") {
    throttle = cluster::RecoveryOptions::Throttle::kDefer;
  } else if (throttle_name == "shed") {
    throttle = cluster::RecoveryOptions::Throttle::kShed;
  } else if (!throttle_name.empty() && throttle_name != "off") {
    std::cerr << "unknown --throttle mode: " << throttle_name << "\n";
    return 1;
  }

  auto scenario_for = [&](double rate, std::size_t seq) {
    faults::FaultScenario s;
    if (rate <= 0.0) return s;  // disabled: no fault plane at all
    s.seed = 7000 + static_cast<std::uint64_t>(seq);
    s.hazards.board_crash_per_s = rate;
    s.hazards.link_flap_per_s = rate;
    s.hazards.slot_seu_per_s = 2.0 * rate;
    s.horizon = t_eval;
    // Guaranteed direct hits, identical across modes: the initial pool is
    // Only.Little, so plane board 0 (OL0) is the active board 2 s into the
    // congested phase; the crash fails the cluster over to Big.Little, so
    // by 10 s plane board 1 (BL0) is running the backlog — including
    // Big-slot bundles mid-batch, the case only a checkpoint can save.
    s.timeline.push_back(
        {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 0, -1});
    s.timeline.push_back(
        {sim::seconds(10.0), faults::FaultKind::kBoardCrash, 1, -1});
    return s;
  };

  std::cout << "=== Extension: fault resilience (" << apps_per_seq
            << " stress apps, " << n_seqs
            << " sequences pooled; censored at t="
            << sim::to_seconds(t_eval) << "s) ===\n\n";

  auto cells = runner.map<metrics::ClusterRunResult>(
      std::size(crash_rates) * modes.size() * n_seqs,
      [&](std::size_t i) {
        const double rate = crash_rates[i / (modes.size() * n_seqs)];
        const Mode& mode = modes[(i / n_seqs) % modes.size()];
        const std::size_t seq = i % n_seqs;
        cluster::ClusterOptions options;
        options.faults = scenario_for(rate, seq);
        options.recovery.enable_recovery = mode.enable_recovery;
        options.recovery.kill_restart = mode.kill_restart;
        // Checkpointing stays on at rate 0 too: the mode's fault-free
        // baseline carries the snapshot overhead, so the inflation column
        // never hides the checkpoint cost.
        options.checkpoint.enabled = mode.checkpoint;
        options.checkpoint.delta = mode.delta;
        options.checkpoint.interval = sim::ms(ckpt_interval_ms);
        options.checkpoint.granularity = ckpt_granularity;
        options.recovery.throttle = throttle;
        return metrics::run_cluster(suite, sequences[seq], options);
      });

  util::Table table({"crash/s", "mode", "done", "censored ms", "inflation",
                     "evac", "ckpt", "restart", "lost", "MTTR ms", "avail",
                     "ckpt MB"});
  util::CsvWriter csv("ext_fault_resilience.csv");
  csv.header({"crash_rate", "mode", "completed", "submitted",
              "censored_mean_ms", "inflation", "evacuated", "ckpt_restored",
              "restarted", "lost", "mttr_ms", "availability", "ckpt_bases",
              "ckpt_deltas", "ckpt_compactions", "ckpt_base_bytes",
              "ckpt_delta_bytes", "ckpt_total_bytes", "ckpt_dirty_regions",
              "ckpt_skipped_clean", "ckpt_skipped_empty", "switches",
              "migration_precopy_rounds", "migration_precopy_bytes",
              "migration_stopcopy_bytes", "migration_downtime_ms"});
  std::size_t cursor = 0;
  // Per-mode fault-free baseline for the inflation column (filled by the
  // rate 0 pass, which the grid orders first).
  std::vector<double> baseline_ms(modes.size(), 0.0);
  bool ordering_ok = true;
  std::int64_t total_deferred = 0, total_arrivals_shed = 0;
  for (std::size_t ri = 0; ri < std::size(crash_rates); ++ri) {
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      double censored_sum_ms = 0;
      int done = 0, submitted = 0;
      cluster::RecoveryStats stats;
      runtime::CheckpointStats ckpt;
      int switches = 0, precopy_rounds = 0;
      std::int64_t precopy_bytes = 0, stopcopy_bytes = 0;
      double downtime_ms = 0;
      double avail = 0;
      for (std::size_t si = 0; si < n_seqs; ++si) {
        const auto& r = cells[cursor++];
        ckpt += r.checkpoint;
        switches += static_cast<int>(r.switches.size());
        for (const cluster::SwitchEvent& e : r.switches) {
          precopy_rounds += e.precopy_rounds;
          precopy_bytes += e.precopy_bytes;
          stopcopy_bytes += e.stopcopy_bytes;
          downtime_ms += sim::to_ms(e.downtime);
        }
        done += r.completed;
        submitted += r.submitted;
        for (double ms : r.response_ms) censored_sum_ms += ms;
        // Charge every app the run did not complete with (T_eval - arrival):
        // match completions against the sequence's arrival multiset.
        std::multiset<sim::SimTime> open;
        for (const apps::AppArrival& a : sequences[si]) {
          open.insert(a.arrival);
        }
        for (const runtime::CompletedApp& c : r.apps) {
          auto it = open.find(c.arrival);
          if (it != open.end()) open.erase(it);
        }
        for (sim::SimTime arrival : open) {
          censored_sum_ms += sim::to_ms(t_eval - arrival);
        }
        stats.apps_evacuated += r.recovery.apps_evacuated;
        stats.apps_checkpoint_restored += r.recovery.apps_checkpoint_restored;
        stats.apps_restarted += r.recovery.apps_restarted;
        stats.apps_lost += r.recovery.apps_lost;
        stats.apps_shed += r.recovery.apps_shed;
        stats.boards_crashed += r.recovery.boards_crashed;
        stats.mttr_total += r.recovery.mttr_total;
        stats.mttr_count += r.recovery.mttr_count;
        stats.arrivals_deferred += r.recovery.arrivals_deferred;
        stats.arrivals_shed += r.recovery.arrivals_shed;
        avail += r.availability;
      }
      avail /= static_cast<double>(n_seqs);
      total_deferred += stats.arrivals_deferred;
      total_arrivals_shed += stats.arrivals_shed;
      double censored_mean = censored_sum_ms / static_cast<double>(submitted);
      if (crash_rates[ri] == 0.0) baseline_ms[mi] = censored_mean;
      if (baseline_ms[mi] <= 0) ordering_ok = false;
      double inflation =
          baseline_ms[mi] > 0 ? censored_mean / baseline_ms[mi] : 0;
      table.add_row();
      table.cell(crash_rates[ri], 2);
      table.cell(modes[mi].name);
      table.cell(std::to_string(done) + "/" + std::to_string(submitted));
      table.cell(censored_mean, 1);
      table.cell(inflation, 3);
      table.cell(static_cast<std::int64_t>(stats.apps_evacuated));
      table.cell(static_cast<std::int64_t>(stats.apps_checkpoint_restored));
      table.cell(static_cast<std::int64_t>(stats.apps_restarted));
      table.cell(static_cast<std::int64_t>(stats.apps_lost));
      table.cell(stats.mttr_ms_mean(), 1);
      table.cell(avail, 4);
      table.cell(static_cast<double>(ckpt.total_bytes()) / 1e6, 2);
      csv.begin_row();
      csv.field(crash_rates[ri]);
      csv.field(std::string(modes[mi].name));
      csv.field(done);
      csv.field(submitted);
      csv.field(censored_mean);
      csv.field(inflation);
      csv.field(stats.apps_evacuated);
      csv.field(stats.apps_checkpoint_restored);
      csv.field(stats.apps_restarted);
      csv.field(stats.apps_lost);
      csv.field(stats.mttr_ms_mean());
      csv.field(avail);
      csv.field(ckpt.bases);
      csv.field(ckpt.deltas);
      csv.field(ckpt.compactions);
      csv.field(ckpt.base_bytes);
      csv.field(ckpt.delta_bytes);
      csv.field(ckpt.total_bytes());
      csv.field(ckpt.dirty_regions);
      csv.field(ckpt.skipped_clean);
      csv.field(ckpt.skipped_empty);
      csv.field(switches);
      csv.field(precopy_rounds);
      csv.field(precopy_bytes);
      csv.field(stopcopy_bytes);
      csv.field(downtime_ms);
      csv.end_row();
    }
  }
  table.print(std::cout);
  if (throttle != cluster::RecoveryOptions::Throttle::kOff) {
    std::cout << "\nAdmission throttle (" << throttle_name
              << "): " << total_deferred << " arrivals deferred behind the "
              << "readmission queue, " << total_arrivals_shed << " shed\n";
  }
  if (!ordering_ok) {
    std::cout << "\nWARNING: rate-0 baseline missing; inflation column "
                 "invalid\n";
  }
  std::cout << "\n(recovery evacuates every app with DDR-resident progress "
               "over the Aurora link and restarts only the rest, so its "
               "censored mean tracks the fault-free run; checkpoint "
               "additionally restores bundled apps to their last periodic "
               "DDR snapshot, bounding the re-run window to one interval; "
               "ckpt-delta keeps the same restore guarantee but copies only "
               "dirtied DDR regions per pass, so its checkpoint volume — "
               "the ckpt MB column — drops well below whole-state at the "
               "same cadence while matching its censored means and MTTR; "
               "note that inflation divides by the mode's own fault-free "
               "baseline, and delta's cheaper passes lower that baseline, "
               "so equal recovery quality reads as an equal-or-slightly-"
               "higher ratio; no-recovery forfeits every app caught on the "
               "crashed board and pays T_eval for each)\n"
               "Series written to ext_fault_resilience.csv\n";

  // Optional instrumented replay (--metrics-out PREFIX / --trace-out FILE /
  // --journal-out FILE): re-run the harshest recovery cell with telemetry
  // and/or the causal trace hub attached, so the run report carries the
  // fault counters, evacuation latency, MTTR and per-board availability,
  // and the trace/journal capture the crash -> evacuation -> readmission
  // causality. Phase accounting rides the trace/journal flags.
  if (!metrics_out.empty() || !trace_out.empty() || !journal_out.empty()) {
    obs::Telemetry telemetry;
    obs::ClusterTraceHub hub;
    hub.enable_trace(!trace_out.empty());
    hub.enable_journal(!journal_out.empty());
    cluster::ClusterOptions options;
    options.faults =
        scenario_for(crash_rates[std::size(crash_rates) - 1], 0);
    options.recovery.enable_recovery = true;
    options.checkpoint.enabled = true;
    options.checkpoint.delta = true;
    options.checkpoint.interval = sim::ms(ckpt_interval_ms);
    options.checkpoint.granularity = ckpt_granularity;
    options.migration.precopy = true;
    if (!trace_out.empty() || !journal_out.empty()) {
      options.hub = &hub;
      options.phase_accounting = true;
    }
    (void)metrics::run_cluster(suite, sequences[0], options,
                               sim::seconds(36000.0),
                               metrics_out.empty() ? nullptr : &telemetry);
    if (!metrics_out.empty()) {
      telemetry.info().config.emplace_back("bench", "ext_fault_resilience");
      telemetry.info().config.emplace_back("mode", "ckpt-delta+precopy");
      telemetry.write_outputs(metrics_out);
      std::cout << "Telemetry written to " << metrics_out
                << ".{prom,jsonl,report.json}\n";
    }
    if (!trace_out.empty()) {
      hub.write_chrome_trace_file(trace_out);
      std::cout << "Chrome trace written to " << trace_out << "\n";
    }
    if (!journal_out.empty()) {
      hub.write_journal_file(journal_out);
      std::cout << "Run journal written to " << journal_out << "\n";
    }
  }
  return 0;
}
