// Extension: multi-tenant serving plane at cluster scale.
//
// Three SLO classes share the cluster under open-loop traffic:
//
//   interactive -- diurnal-modulated arrivals, tight latency target,
//                  drains first (priority 0), 3x fair-share weight
//   standard    -- Poisson arrivals, mid target, priority 1
//   batch       -- MMPP-bursty arrivals, loose target, priority 2,
//                  quota-capped so bursts defer instead of flooding
//
// The sweep scales the board pool across --boards points (total boards =
// 2 x boards/config: both fabric pools serve; switching is off so capacity
// is flat) against arrival-rate multipliers, and reports per-class SLO
// attainment, goodput (SLO-attained completions per second), and the
// p50/p99/p99.9 response tail. Every admission and routing decision runs
// in coordinator events over a seed-derived trace, so the table and
// ext_multitenant.csv are bit-identical for any --jobs / --kernel-jobs
// worker count (scripts/check.sh diffs serial vs sharded).
//
// --metrics-out PREFIX re-runs the largest cell instrumented and writes
// the vs_tenant_* series (admitted/rejected/deferred/completed/slo_miss
// counters per tenant, response histograms per class).
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "serve/serve.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

/// The tenant mix for one cell: per-class base rates scale with the board
/// pool (open-loop load tracks capacity) and the rate multiplier.
vs::serve::ServeConfig make_config(int boards_per_config, double rate_mult,
                                   double horizon_s) {
  using namespace vs;
  serve::ServeConfig config;
  config.seed = 2025;
  config.horizon = sim::seconds(horizon_s);
  // Cluster-wide admission cap of ~1.5 jobs per board: beyond it arrivals
  // queue at the admission controller (where weight and priority decide
  // who drains first) instead of piling onto board queues where they
  // would wreck every class's tail alike.
  config.max_inflight = 3 * boards_per_config;
  // Targets sit just above each class's lightly-loaded service time (a
  // 5-10 item app needs ~0.9 s of board time), so attainment is high at
  // rate_mult 0.5 and degrades measurably once the cluster saturates.
  config.classes = {
      {"interactive", sim::ms(2500.0), 0},
      {"standard", sim::ms(4000.0), 1},
      {"batch", sim::ms(12000.0), 2},
  };
  // Per-board-pair base load. A lightly loaded board turns a small-batch
  // app around in a few hundred ms (fig5's loose regime ~1 s at 0.2
  // apps/s/board with big batches), so ~0.5 apps/s per board pair at
  // rate_mult 1.0 keeps the pools busy without saturating; 2.0 pushes
  // the cluster past capacity and the admission controller has to choose.
  const double scale = rate_mult * static_cast<double>(boards_per_config);

  serve::Tenant interactive;
  interactive.name = "interactive";
  interactive.slo_class = 0;
  interactive.weight = 3.0;
  interactive.arrivals.kind = workload::ArrivalKind::kDiurnal;
  interactive.arrivals.rate_per_s = 0.25 * scale;
  interactive.arrivals.diurnal_depth = 0.6;
  interactive.arrivals.diurnal_period_s = horizon_s / 2.0;
  interactive.min_batch = 5;
  interactive.max_batch = 10;
  config.tenants.push_back(interactive);

  serve::Tenant standard;
  standard.name = "standard";
  standard.slo_class = 1;
  standard.weight = 2.0;
  standard.arrivals.kind = workload::ArrivalKind::kPoisson;
  standard.arrivals.rate_per_s = 0.15 * scale;
  standard.min_batch = 8;
  standard.max_batch = 20;
  config.tenants.push_back(standard);

  serve::Tenant batch;
  batch.name = "batch";
  batch.slo_class = 2;
  batch.weight = 1.0;
  batch.quota = boards_per_config;           // bursts defer, not flood
  batch.defer_limit = boards_per_config;     // ...and reject past backlog
  batch.arrivals.kind = workload::ArrivalKind::kMmpp;
  batch.arrivals.rate_per_s = 0.05 * scale;
  batch.arrivals.burst_rate_per_s = 0.6 * scale;
  batch.arrivals.burst_on_s = 2.0;
  batch.arrivals.burst_off_s = 6.0;
  batch.min_batch = 15;
  batch.max_batch = 30;
  config.tenants.push_back(batch);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));
  const int kernel_jobs = util::resolve_kernel_jobs(&args);
  const double horizon_s = util::resolve_double(&args, "horizon", "VS_HORIZON", 20.0);
  const std::string metrics_out = obs::resolve_metrics_out(&args);

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  // Board-pool points (per fabric configuration; total = 2x) and the
  // arrival-rate multipliers swept against each. --boards N / --rate R
  // restrict the sweep to one point for smokes.
  std::vector<int> board_counts = {8, 64, 256};  // 16, 128, 512 total
  std::vector<double> rate_mults = {0.5, 1.0, 2.0};
  if (args.has("boards")) {
    board_counts = {static_cast<int>(args.get_int("boards", 8))};
  }
  if (args.has("rate")) {
    rate_mults = {args.get_double("rate", 1.0)};
  }

  std::cout << "=== Extension: multi-tenant serving plane ("
            << sim::to_seconds(sim::seconds(horizon_s))
            << "s open-loop horizon, 3 SLO classes) ===\n\n";

  auto cells = runner.map<serve::ServeResult>(
      board_counts.size() * rate_mults.size(), [&](std::size_t i) {
        const int boards = board_counts[i / rate_mults.size()];
        const double rate = rate_mults[i % rate_mults.size()];
        cluster::ClusterOptions options;
        options.boards_per_config = boards;
        // Flat capacity: both pools serve, no D_switch churn — the sweep
        // isolates admission + routing behaviour.
        options.enable_switching = false;
        options.kernel_workers = kernel_jobs;
        serve::ServeConfig config =
            make_config(boards, rate, horizon_s);
        config.rebalance = true;
        return serve::run_serve(suite, config, options);
      });

  util::Table table({"boards", "rate", "class", "arrivals", "admit",
                     "reject", "done", "attain", "goodput/s", "p50 ms",
                     "p99 ms", "p99.9 ms"});
  util::CsvWriter csv("ext_multitenant.csv");
  csv.header({"boards_total", "rate_mult", "slo_class", "arrivals",
              "admitted", "deferred", "rejected", "completed", "slo_miss",
              "attainment", "goodput_per_s", "p50_ms", "p95_ms", "p99_ms",
              "p999_ms"});
  std::size_t cursor = 0;
  for (int boards : board_counts) {
    for (double rate : rate_mults) {
      const serve::ServeResult& r = cells[cursor++];
      for (std::size_t c = 0; c < r.classes.size(); ++c) {
        const serve::ClassResult& cls = r.classes[c];
        std::int64_t arrivals = 0, admitted = 0, deferred = 0, rejected = 0;
        for (const serve::TenantResult& t : r.tenants) {
          if (static_cast<std::size_t>(t.slo_class) != c) continue;
          arrivals += t.submitted;
          admitted += t.admitted;
          deferred += t.deferred;
          rejected += t.rejected;
        }
        table.add_row();
        table.cell(static_cast<std::int64_t>(2 * boards));
        table.cell(rate, 1);
        table.cell(cls.name);
        table.cell(arrivals);
        table.cell(admitted);
        table.cell(rejected);
        table.cell(cls.completed);
        table.cell(cls.attainment, 3);
        table.cell(cls.goodput_per_s, 2);
        table.cell(cls.response_ms.p50, 1);
        table.cell(cls.response_ms.p99, 1);
        table.cell(cls.response_ms.p999, 1);
        csv.begin_row();
        csv.field(2 * boards);
        csv.field(rate);
        csv.field(cls.name);
        csv.field(arrivals);
        csv.field(admitted);
        csv.field(deferred);
        csv.field(rejected);
        csv.field(cls.completed);
        csv.field(cls.slo_miss);
        csv.field(cls.attainment);
        csv.field(cls.goodput_per_s);
        csv.field(cls.response_ms.p50);
        csv.field(cls.response_ms.p95);
        csv.field(cls.response_ms.p99);
        csv.field(cls.response_ms.p999);
        csv.end_row();
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(the weighted-deficit admission controller holds the "
               "interactive class's attainment as the rate multiplier "
               "climbs: its 3x weight and priority-0 queue drain first "
               "while the quota-capped batch class absorbs the deferrals; "
               "goodput counts only SLO-attained completions, so a class "
               "that admits more than it can serve in time gains nothing)\n"
               "Series written to ext_multitenant.csv\n";

  // Optional instrumented replay of the largest swept cell: exports the
  // vs_tenant_* series registered by the serving plane.
  if (!metrics_out.empty()) {
    obs::Telemetry telemetry;
    cluster::ClusterOptions options;
    options.boards_per_config = board_counts.back();
    options.enable_switching = false;
    options.kernel_workers = kernel_jobs;
    serve::ServeConfig config =
        make_config(board_counts.back(), rate_mults.back(), horizon_s);
    config.rebalance = true;
    (void)serve::run_serve(suite, config, options, sim::seconds(36000.0),
                           &telemetry);
    telemetry.info().config.emplace_back("bench", "ext_multitenant");
    telemetry.write_outputs(metrics_out);
    std::cout << "Telemetry written to " << metrics_out
              << ".{prom,jsonl,report.json}\n";
  }
  return 0;
}
