// Extension: scheduling-quality comparison — slowdown distribution and
// Jain fairness across all seven systems.
//
// The paper argues qualitatively that preemption prevents monopolisation
// and that redistribution avoids slot idling; this bench quantifies both
// through per-app slowdown (response / estimated alone-run time) and the
// fairness of its distribution.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "metrics/quality.h"
#include "util/table.h"
#include "workload/generator.h"

int main() {
  using namespace vs;

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  std::cout << "=== Extension: slowdown and fairness across systems ===\n"
            << "3 sequences x 20 apps per condition, averaged\n\n";

  for (auto congestion :
       {workload::Congestion::kStandard, workload::Congestion::kStress}) {
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = 20;
    auto sequences = workload::generate_sequences(config, 3, 2025);

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table({"system", "mean slowdown", "P95 slowdown",
                       "max slowdown", "Jain fairness", "apps/s"});
    for (int k = 0; k < metrics::kSystemCountExtended; ++k) {
      auto kind = static_cast<metrics::SystemKind>(k);
      metrics::QualityReport avg;
      for (const auto& seq : sequences) {
        auto run = metrics::run_single_board(kind, suite, seq);
        auto q = metrics::quality(run, suite, seq, params);
        avg.mean_slowdown += q.mean_slowdown / 3;
        avg.p95_slowdown += q.p95_slowdown / 3;
        avg.max_slowdown += q.max_slowdown / 3;
        avg.jain_fairness += q.jain_fairness / 3;
        avg.throughput_apps_per_s += q.throughput_apps_per_s / 3;
      }
      table.add_row();
      table.cell(metrics::system_name(kind));
      table.cell(avg.mean_slowdown, 2);
      table.cell(avg.p95_slowdown, 2);
      table.cell(avg.max_slowdown, 2);
      table.cell(avg.jain_fairness, 3);
      table.cell(avg.throughput_apps_per_s, 2);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(slowdown = response / estimated unshared run time; Jain "
               "index near 1 means every app suffered equally)\n";
  return 0;
}
