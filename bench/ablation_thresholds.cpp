// Ablation: Schmitt-trigger thresholds T1/T2 and the buffer zone (§III-D).
//
// Sweeps the upper threshold T1 and the hysteresis width (T1-T2) on the
// Fig 8 long workload and reports switch counts, migration overheads and
// mean response time. A degenerate loop with T1 == T2 (no buffer zone) is
// included to demonstrate why the hysteresis exists: without it, samples
// oscillating around the single threshold cause switch thrashing.
#include <iostream>
#include <iterator>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

#include "workload/patterns.h"

namespace {

/// An oscillating long workload: three 20-app stress bursts separated by
/// quiet loose-interval phases, so the D_switch signal rises and falls
/// repeatedly — the regime where hysteresis matters.
vs::workload::Sequence make_long_workload(std::uint64_t seed) {
  using namespace vs;
  util::Rng rng(seed);
  return workload::phased_sequence({{20, workload::Congestion::kStress},
                                    {10, workload::Congestion::kLoose},
                                    {20, workload::Congestion::kStress},
                                    {10, workload::Congestion::kLoose},
                                    {20, workload::Congestion::kStress},
                                    {10, workload::Congestion::kLoose}},
                                   rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq = make_long_workload(3000);

  struct Point {
    double t1, t2;
  };
  const Point points[] = {
      {0.015, 0.004}, {0.030, 0.008}, {0.050, 0.015}, {0.080, 0.030},
      {0.030, 0.030},  // degenerate: no buffer zone
      {0.030, 0.001},  // very wide hysteresis
  };
  constexpr std::size_t kPoints = std::size(points);

  std::cout << "=== Ablation: switch-loop thresholds (90-app oscillating "
               "workload) ===\n\n";
  util::Table table({"T1", "T2", "switches", "migrated apps", "overhead ms",
                     "mean ms"});
  // Cluster replicas are independent too; shard the threshold points plus
  // the switching-off baseline (index kPoints) across the sweep workers.
  auto cluster_cells = runner.map<metrics::ClusterRunResult>(
      kPoints + 1, [&](std::size_t i) {
        cluster::ClusterOptions options;
        if (i == kPoints) {
          options.enable_switching = false;
        } else {
          options.t1 = points[i].t1;
          options.t2 = points[i].t2;
        }
        return metrics::run_cluster(suite, seq, options);
      });
  const auto& baseline = cluster_cells[kPoints];

  for (std::size_t pi = 0; pi < kPoints; ++pi) {
    const Point& p = points[pi];
    const auto& r = cluster_cells[pi];
    double overhead = 0;
    int migrated = 0;
    for (const auto& e : r.switches) {
      overhead += sim::to_ms(e.overhead);
      migrated += e.apps_migrated;
    }
    table.add_row();
    table.cell(p.t1, 3);
    table.cell(p.t2, 3);
    table.cell(static_cast<std::int64_t>(r.switches.size()));
    table.cell(static_cast<std::int64_t>(migrated));
    table.cell(overhead, 2);
    table.cell(r.response.mean, 1);
  }
  table.add_row();
  table.cell("off");
  table.cell("-");
  table.cell(static_cast<std::int64_t>(0));
  table.cell(static_cast<std::int64_t>(0));
  table.cell(0.0, 2);
  table.cell(baseline.response.mean, 1);
  table.print(std::cout);
  std::cout << "\n(a high T1 reacts late or never and approaches the "
               "switching-off response time; low-to-moderate thresholds "
               "catch every burst. The queue-depth stabilisation guards "
               "keep even the degenerate T1==T2 loop from thrashing, so "
               "the buffer zone's remaining role is pre-warming lead "
               "time)\n";
  return 0;
}
