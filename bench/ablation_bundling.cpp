// Ablation: 3-in-1 bundling design choices.
//
// Part 1 (Fig 3): the serial-vs-parallel bundle criterion. For every
// bundle of every suite application, sweep the batch size and print which
// mode the runtime criterion selects and both makespans — showing where the
// crossover sits (serial wins only for small batches on skewed bundles).
//
// Part 2 (§III-B): bundle-size justification. The paper sets the bundle
// size to 3 "based on the Big slot's resource capacity to accommodate tasks
// and its fewer idle task cycles in pipelines than a larger size". We run
// the standard workload with bundle sizes 2, 3 and 4 and report mean
// response time and how many apps still fit Big slots at each size.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  apps::SynthesisModel model;
  auto suite = apps::make_suite(params, model);

  std::cout << "=== Ablation part 1 (Fig 3): serial vs parallel bundle "
               "criterion ===\n\n";
  util::Table modes({"app", "bundle", "Tmax ms", "sum ms", "batch=1",
                     "batch=2", "batch=5", "batch=30"});
  for (const apps::AppSpec& app : suite) {
    auto bundles = apps::make_big_units(app, 1, params, model);
    for (std::size_t b = 0; b < bundles.size(); ++b) {
      std::vector<sim::SimDuration> lat;
      for (int t = bundles[b].first_task; t <= bundles[b].last_task; ++t) {
        lat.push_back(app.tasks[static_cast<std::size_t>(t)].item_latency);
      }
      sim::SimDuration tmax = *std::max_element(lat.begin(), lat.end());
      sim::SimDuration sum = 0;
      for (auto l : lat) sum += l;
      modes.add_row();
      modes.cell(app.name);
      modes.cell("#" + std::to_string(b + 1));
      modes.cell(sim::to_ms(tmax), 1);
      modes.cell(sim::to_ms(sum), 1);
      for (int batch : {1, 2, 5, 30}) {
        modes.cell(to_string(apps::choose_mode(lat, batch)));
      }
    }
  }
  modes.print(std::cout);
  std::cout << "\n(criterion: serial iff Tmax*(B+g-1) > sum*B — balanced "
               "bundles go parallel for any realistic batch)\n\n";

  std::cout << "=== Ablation part 2: bundle size 2 / 3 / 4 ===\n\n";
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStandard;
  config.apps_per_sequence = 20;
  auto sequences = workload::generate_sequences(config, 5, 2025);

  util::Table sizes({"bundle size", "apps bundleable", "mean ms", "P95 ms",
                     "PRs", "PR-blocked"});
  // (bundle size × sequence) sweep, reduced per size in grid order.
  const int bundle_sizes[] = {2, 3, 4};
  std::vector<metrics::SweepJob> size_grid;
  for (int size : bundle_sizes) {
    metrics::RunOptions options;
    options.vs_options.bundle_size = size;
    for (const auto& seq : sequences) {
      size_grid.push_back(metrics::SweepJob{
          metrics::SystemKind::kVersaBigLittle, seq, options});
    }
  }
  auto size_cells = runner.run(suite, size_grid);
  std::size_t size_cursor = 0;
  for (int size : bundle_sizes) {
    int bundleable = 0;
    for (const apps::AppSpec& app : suite) {
      bundleable += apps::can_bundle(app, params, model, size);
    }
    std::vector<double> pooled;
    std::int64_t prs = 0, blocked = 0;
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const auto& r = size_cells[size_cursor++];
      pooled.insert(pooled.end(), r.response_ms.begin(),
                    r.response_ms.end());
      prs += r.counters.pr_requests;
      blocked += r.counters.pr_blocked;
    }
    util::Summary s = util::summarize(pooled);
    sizes.add_row();
    sizes.cell(static_cast<std::int64_t>(size));
    sizes.cell(std::to_string(bundleable) + "/5");
    sizes.cell(s.mean, 1);
    sizes.cell(s.p95, 1);
    sizes.cell(prs);
    sizes.cell(blocked);
  }
  sizes.print(std::cout);
  std::cout << "\n(size 2 nearly doubles the Big-slot PR count and its "
               "contention; size 4 loses bundleability of the heaviest app "
               "and pushes up tail latency — 3 balances capacity fit and "
               "PR reduction, as the paper argues)\n\n";

  // ------------------------------------------------------------- part 3
  std::cout << "=== Ablation part 3: runtime mode selection vs forced "
               "modes ===\n\n";
  struct ModeVariant {
    const char* label;
    std::optional<apps::BundleMode> forced;
  };
  const ModeVariant variants[] = {
      {"auto (criterion)", std::nullopt},
      {"always parallel", apps::BundleMode::kParallel},
      {"always serial", apps::BundleMode::kSerial},
  };
  util::Table modes_table({"selection", "mean ms", "P95 ms"});
  std::vector<metrics::SweepJob> mode_grid;
  for (const ModeVariant& v : variants) {
    metrics::RunOptions options;
    options.vs_options.forced_bundle_mode = v.forced;
    for (const auto& seq : sequences) {
      mode_grid.push_back(metrics::SweepJob{
          metrics::SystemKind::kVersaBigLittle, seq, options});
    }
  }
  auto mode_cells = runner.run(suite, mode_grid);
  std::size_t mode_cursor = 0;
  for (const ModeVariant& v : variants) {
    std::vector<double> pooled;
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const auto& r = mode_cells[mode_cursor++];
      pooled.insert(pooled.end(), r.response_ms.begin(),
                    r.response_ms.end());
    }
    util::Summary s = util::summarize(pooled);
    modes_table.add_row();
    modes_table.cell(v.label);
    modes_table.cell(s.mean, 1);
    modes_table.cell(s.p95, 1);
  }
  modes_table.print(std::cout);
  std::cout << "\n(with batches of 5-30, the criterion selects parallel for "
               "nearly every bundle, so auto tracks always-parallel; forced "
               "serial pays Sum(Ti) per item and loses)\n";
  return 0;
}
