// Fig 6 reproduction: tail response time (P95 / P99) normalised to the
// baseline for all six systems under the four congestion conditions.
//
// Same experimental setup as Fig 5 (10 x 20-app sequences). The paper's
// claims checked here: Big.Little beats Nimblock on P95 and P99 across all
// congestion conditions (by 83%/46% under stress and 56%/48% under
// real-time), while P99 may slightly trail the variance-free exclusive
// baseline.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generator.h"

namespace {

constexpr std::uint64_t kMasterSeed = 2025;
constexpr int kSequences = 10;
constexpr int kAppsPerSequence = 20;

}  // namespace

int main() {
  using namespace vs;

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  std::cout << "=== Fig 6: tail response time normalised to baseline ===\n\n";
  util::CsvWriter csv("fig6_tail_latency.csv");
  csv.header({"congestion", "system", "p95_ms", "p99_ms", "p95_vs_baseline",
              "p99_vs_baseline"});

  for (int ci = 0; ci < workload::kCongestionCount; ++ci) {
    auto congestion = static_cast<workload::Congestion>(ci);
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = kAppsPerSequence;
    auto sequences =
        workload::generate_sequences(config, kSequences, kMasterSeed);

    std::vector<metrics::AggregateResult> results;
    for (int k = 0; k < metrics::kSystemCount; ++k) {
      results.push_back(metrics::aggregate(
          static_cast<metrics::SystemKind>(k), suite, sequences));
    }
    const auto& base = results[0];
    const auto& nim = results[3];
    const auto& bl = results[5];

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table(
        {"system", "P95 ms", "P99 ms", "P95/base", "P99/base"});
    for (const auto& r : results) {
      table.add_row();
      table.cell(r.system);
      table.cell(r.p95_ms, 1);
      table.cell(r.p99_ms, 1);
      table.cell(r.p95_ms / base.p95_ms, 2);
      table.cell(r.p99_ms / base.p99_ms, 2);
      csv.row({workload::congestion_name(congestion), r.system,
               util::fmt(r.p95_ms, 3), util::fmt(r.p99_ms, 3),
               util::fmt(r.p95_ms / base.p95_ms, 4),
               util::fmt(r.p99_ms / base.p99_ms, 4)});
    }
    table.print(std::cout);
    std::cout << "  Big.Little vs Nimblock: P95 "
              << util::fmt((nim.p95_ms / bl.p95_ms - 1) * 100, 0)
              << "% better, P99 "
              << util::fmt((nim.p99_ms / bl.p99_ms - 1) * 100, 0)
              << "% better (paper: stress 83%/46%, real-time 56%/48%)\n\n";
  }
  std::cout << "Series written to fig6_tail_latency.csv\n";
  return 0;
}
