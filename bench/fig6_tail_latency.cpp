// Fig 6 reproduction: tail response time (P95 / P99) normalised to the
// baseline for all six systems under the four congestion conditions.
//
// Same experimental setup as Fig 5 (10 x 20-app sequences). The paper's
// claims checked here: Big.Little beats Nimblock on P95 and P99 across all
// congestion conditions (by 83%/46% under stress and 56%/48% under
// real-time), while P99 may slightly trail the variance-free exclusive
// baseline.
// The (congestion × system × sequence) grid runs on metrics::SweepRunner
// (--jobs N / VS_JOBS); reduction order is fixed, so the CSV is
// byte-identical for any worker count.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generator.h"

namespace {

constexpr std::uint64_t kMasterSeed = 2025;
constexpr int kSequences = 10;
constexpr int kAppsPerSequence = 20;

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  std::cout << "=== Fig 6: tail response time normalised to baseline ===\n"
            << "(" << runner.jobs() << " worker thread(s))\n\n";
  util::CsvWriter csv("fig6_tail_latency.csv");
  csv.header({"congestion", "system", "p95_ms", "p99_ms", "p95_vs_baseline",
              "p99_vs_baseline", "completed", "recovering"});

  for (int ci = 0; ci < workload::kCongestionCount; ++ci) {
    auto congestion = static_cast<workload::Congestion>(ci);
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = kAppsPerSequence;
    auto sequences =
        workload::generate_sequences(config, kSequences, kMasterSeed);

    // All six systems' replicas for this congestion level in one sweep.
    std::vector<metrics::SweepJob> grid;
    for (int k = 0; k < metrics::kSystemCount; ++k) {
      for (const auto& seq : sequences) {
        metrics::RunOptions options;
        // Phase accounting feeds the completed/recovering CSV split; every
        // latency column is unchanged (pure bookkeeping).
        options.phase_accounting = true;
        grid.push_back(metrics::SweepJob{
            static_cast<metrics::SystemKind>(k), seq, options});
      }
    }
    auto cells = runner.run(suite, grid);

    std::vector<metrics::AggregateResult> results;
    std::vector<int> sys_completed(
        static_cast<std::size_t>(metrics::kSystemCount), 0);
    std::vector<int> sys_recovering(
        static_cast<std::size_t>(metrics::kSystemCount), 0);
    for (int k = 0; k < metrics::kSystemCount; ++k) {
      std::vector<metrics::RunResult> per_seq(
          cells.begin() + static_cast<std::ptrdiff_t>(k * kSequences),
          cells.begin() + static_cast<std::ptrdiff_t>((k + 1) * kSequences));
      results.push_back(metrics::reduce_aggregate(
          static_cast<metrics::SystemKind>(k), per_seq));
      for (const auto& r : per_seq) {
        sys_completed[static_cast<std::size_t>(k)] += r.completed;
        sys_recovering[static_cast<std::size_t>(k)] +=
            metrics::recovered_completions(r.apps);
      }
    }
    const auto& base = results[0];
    const auto& nim = results[3];
    const auto& bl = results[5];

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table(
        {"system", "P95 ms", "P99 ms", "P95/base", "P99/base"});
    for (std::size_t k = 0; k < results.size(); ++k) {
      const auto& r = results[k];
      table.add_row();
      table.cell(r.system);
      table.cell(r.p95_ms, 1);
      table.cell(r.p99_ms, 1);
      table.cell(r.p95_ms / base.p95_ms, 2);
      table.cell(r.p99_ms / base.p99_ms, 2);
      csv.row({workload::congestion_name(congestion), r.system,
               util::fmt(r.p95_ms, 3), util::fmt(r.p99_ms, 3),
               util::fmt(r.p95_ms / base.p95_ms, 4),
               util::fmt(r.p99_ms / base.p99_ms, 4),
               std::to_string(sys_completed[k]),
               std::to_string(sys_recovering[k])});
    }
    table.print(std::cout);
    std::cout << "  Big.Little vs Nimblock: P95 "
              << util::fmt((nim.p95_ms / bl.p95_ms - 1) * 100, 0)
              << "% better, P99 "
              << util::fmt((nim.p99_ms / bl.p99_ms - 1) * 100, 0)
              << "% better (paper: stress 83%/46%, real-time 56%/48%)\n\n";
  }
  std::cout << "Series written to fig6_tail_latency.csv\n";

  // Optional telemetry (--metrics-out PREFIX or VS_METRICS): replay the
  // stress / VersaSlot-BL / first-sequence cell single-board with metrics
  // bound and export its instruments. The sweep grid never carries
  // telemetry.
  const std::string metrics_out = obs::resolve_metrics_out(&args);
  const std::string trace_out = obs::resolve_trace_out(&args);
  const std::string journal_out = obs::resolve_journal_out(&args);
  if (!metrics_out.empty() || !trace_out.empty() || !journal_out.empty()) {
    workload::WorkloadConfig config;
    config.congestion = workload::Congestion::kStress;
    config.apps_per_sequence = kAppsPerSequence;
    auto sequences = workload::generate_sequences(config, 1, kMasterSeed);
    obs::Telemetry telemetry;
    obs::ClusterTraceHub hub;
    hub.enable_trace(!trace_out.empty());
    hub.enable_journal(!journal_out.empty());
    metrics::RunOptions opts;
    if (!metrics_out.empty()) opts.telemetry = &telemetry;
    if (!trace_out.empty() || !journal_out.empty()) {
      opts.hub = &hub;
      opts.phase_accounting = true;
    }
    (void)metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                    suite, sequences[0], opts);
    if (!metrics_out.empty()) {
      telemetry.info().config.emplace_back("figure", "fig6");
      telemetry.info().config.emplace_back("congestion", "Stress");
      telemetry.write_outputs(metrics_out);
      std::cout << "Telemetry written to " << metrics_out
                << ".{prom,jsonl,report.json}\n";
    }
    if (!trace_out.empty()) {
      hub.write_chrome_trace_file(trace_out);
      std::cout << "Chrome trace written to " << trace_out << "\n";
    }
    if (!journal_out.empty()) {
      hub.write_journal_file(journal_out);
      std::cout << "Run journal written to " << journal_out << "\n";
    }
  }
  return 0;
}
