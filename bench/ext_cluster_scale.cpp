// Extension: cluster scaling.
//
// The paper evaluates a two-board cluster (one active + one spare). This
// bench scales the per-configuration board pool from 1 to 4 with the
// least-loaded dispatcher and measures how mean/P95 response under a
// saturating workload responds — quantifying how far the cross-board
// switching architecture carries before plain horizontal scaling dominates.
// The (boards × switching × sequence) cluster grid runs on
// metrics::SweepRunner::map (--jobs N / VS_JOBS) with index-keyed results,
// so the table is identical for any worker count.
#include <iostream>
#include <iterator>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 60;
  auto sequences = workload::generate_sequences(config, 3, 2025);

  std::cout << "=== Extension: cluster scaling (60 stress apps, 3 "
               "sequences pooled) ===\n\n";
  util::Table table({"boards/config", "switching", "mean ms", "P95 ms",
                     "switches", "done"});
  // Flat (boards, switching, sequence) grid; each cell is an independent
  // cluster replica keyed by index for the ordered reduction below.
  const int board_counts[] = {1, 2, 3, 4};
  const bool switch_modes[] = {false, true};
  const std::size_t n_seqs = sequences.size();
  auto cells = runner.map<metrics::ClusterRunResult>(
      std::size(board_counts) * std::size(switch_modes) * n_seqs,
      [&](std::size_t i) {
        cluster::ClusterOptions options;
        options.boards_per_config =
            board_counts[i / (std::size(switch_modes) * n_seqs)];
        options.enable_switching =
            switch_modes[(i / n_seqs) % std::size(switch_modes)];
        return metrics::run_cluster(suite, sequences[i % n_seqs], options);
      });
  std::size_t cursor = 0;
  for (int boards : board_counts) {
    for (bool switching : switch_modes) {
      std::vector<double> pooled;
      int switches = 0, done = 0, submitted = 0;
      for (std::size_t si = 0; si < n_seqs; ++si) {
        const auto& r = cells[cursor++];
        pooled.insert(pooled.end(), r.response_ms.begin(),
                      r.response_ms.end());
        switches += static_cast<int>(r.switches.size());
        done += r.completed;
        submitted += r.submitted;
      }
      util::Summary s = util::summarize(pooled);
      table.add_row();
      table.cell(static_cast<std::int64_t>(boards));
      table.cell(switching ? "on" : "off");
      table.cell(s.mean, 1);
      table.cell(s.p95, 1);
      table.cell(static_cast<std::int64_t>(switches));
      table.cell(std::to_string(done) + "/" + std::to_string(submitted));
    }
  }
  table.print(std::cout);
  std::cout << "\n(switching compounds with horizontal scaling: a switch "
               "activates the rested spare pool while the origin boards "
               "drain their in-flight apps, so both pools chew through the "
               "backlog in parallel on top of the Big.Little efficiency "
               "gain)\n";
  return 0;
}
