// Extension: cluster scaling.
//
// The paper evaluates a two-board cluster (one active + one spare). This
// bench scales the per-configuration board pool from 1 to 4 with the
// least-loaded dispatcher and measures how mean/P95 response under a
// saturating workload responds — quantifying how far the cross-board
// switching architecture carries before plain horizontal scaling dominates.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "util/table.h"
#include "workload/generator.h"

int main() {
  using namespace vs;

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 60;
  auto sequences = workload::generate_sequences(config, 3, 2025);

  std::cout << "=== Extension: cluster scaling (60 stress apps, 3 "
               "sequences pooled) ===\n\n";
  util::Table table({"boards/config", "switching", "mean ms", "P95 ms",
                     "switches", "done"});
  for (int boards : {1, 2, 3, 4}) {
    for (bool switching : {false, true}) {
      std::vector<double> pooled;
      int switches = 0, done = 0, submitted = 0;
      for (const auto& seq : sequences) {
        cluster::ClusterOptions options;
        options.boards_per_config = boards;
        options.enable_switching = switching;
        auto r = metrics::run_cluster(suite, seq, options);
        pooled.insert(pooled.end(), r.response_ms.begin(),
                      r.response_ms.end());
        switches += static_cast<int>(r.switches.size());
        done += r.completed;
        submitted += r.submitted;
      }
      util::Summary s = util::summarize(pooled);
      table.add_row();
      table.cell(static_cast<std::int64_t>(boards));
      table.cell(switching ? "on" : "off");
      table.cell(s.mean, 1);
      table.cell(s.p95, 1);
      table.cell(static_cast<std::int64_t>(switches));
      table.cell(std::to_string(done) + "/" + std::to_string(submitted));
    }
  }
  table.print(std::cout);
  std::cout << "\n(switching compounds with horizontal scaling: a switch "
               "activates the rested spare pool while the origin boards "
               "drain their in-flight apps, so both pools chew through the "
               "backlog in parallel on top of the Big.Little efficiency "
               "gain)\n";
  return 0;
}
