// Extension: cluster scaling.
//
// The paper evaluates a two-board cluster (one active + one spare). This
// bench scales the per-configuration board pool from 1 to 4 with the
// least-loaded dispatcher and measures how mean/P95 response under a
// saturating workload responds — quantifying how far the cross-board
// switching architecture carries before plain horizontal scaling dominates.
// The (boards × switching × sequence) cluster grid runs on
// metrics::SweepRunner::map (--jobs N / VS_JOBS) with index-keyed results,
// so the table is identical for any worker count.
//
// `--kernel-jobs N` (or VS_KERNEL_JOBS) additionally runs every cluster
// replica on the sharded event kernel with N window workers; the table is
// bit-identical to the serial-kernel run (scripts/check.sh diffs the two).
// `--kernel-scaling` instead prints an events/second table for the sharded
// kernel at 1/2/4/8 workers on one fixed run — wall-clock numbers, so it is
// excluded from the deterministic smoke diff.
#include <chrono>
#include <iostream>
#include <iterator>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace {

/// One timed cluster run on the given kernel worker count; returns
/// simulated events per wall-clock second (serial kernel when workers == 0).
double measure_event_rate(const std::vector<vs::apps::AppSpec>& suite,
                          const vs::workload::Sequence& sequence,
                          int kernel_workers, std::uint64_t* events_out) {
  vs::cluster::ClusterOptions options;
  options.boards_per_config = 2;
  options.kernel_workers = kernel_workers;
  auto start = std::chrono::steady_clock::now();
  auto result = vs::metrics::run_cluster(suite, sequence, options);
  std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  if (events_out != nullptr) *events_out = result.events;
  return static_cast<double>(result.events) / wall.count();
}

int run_kernel_scaling(const std::vector<vs::apps::AppSpec>& suite,
                       int apps_per_seq) {
  using namespace vs;
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = apps_per_seq;
  util::Rng rng(2025);
  auto sequence = workload::generate_sequence(config, rng);

  std::cout << "=== Sharded kernel scaling (" << apps_per_seq
            << " stress apps, 4 boards) ===\n\n";
  util::Table table({"kernel", "workers", "events", "ev/s"});
  std::uint64_t serial_events = 0;
  double serial_rate =
      measure_event_rate(suite, sequence, 0, &serial_events);
  table.add_row();
  table.cell("serial");
  table.cell(static_cast<std::int64_t>(0));
  table.cell(static_cast<std::int64_t>(serial_events));
  table.cell(serial_rate, 0);
  for (int workers : {1, 2, 4, 8}) {
    std::uint64_t events = 0;
    double rate = measure_event_rate(suite, sequence, workers, &events);
    table.add_row();
    table.cell("sharded");
    table.cell(static_cast<std::int64_t>(workers));
    table.cell(static_cast<std::int64_t>(events));
    table.cell(rate, 0);
    if (events != serial_events) {
      std::cerr << "kernel divergence: " << events << " events at "
                << workers << " workers vs " << serial_events
                << " serial\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\n(event counts are identical by construction; speedup "
               "needs multi-core hardware — a single-CPU container "
               "serialises the window workers)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));
  const int kernel_jobs = util::resolve_kernel_jobs(&args);
  const int apps_per_seq = static_cast<int>(args.get_int("apps", 60));
  const int n_seqs_arg = static_cast<int>(args.get_int("seqs", 3));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  if (args.get_bool("kernel-scaling")) {
    return run_kernel_scaling(suite, apps_per_seq);
  }

  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = apps_per_seq;
  auto sequences = workload::generate_sequences(config, n_seqs_arg, 2025);

  std::cout << "=== Extension: cluster scaling (" << apps_per_seq
            << " stress apps, " << n_seqs_arg << " sequences pooled) ===\n\n";
  util::Table table({"boards/config", "switching", "mean ms", "P95 ms",
                     "switches", "done"});
  // Flat (boards, switching, sequence) grid; each cell is an independent
  // cluster replica keyed by index for the ordered reduction below.
  const int board_counts[] = {1, 2, 3, 4};
  const bool switch_modes[] = {false, true};
  const std::size_t n_seqs = sequences.size();
  auto cells = runner.map<metrics::ClusterRunResult>(
      std::size(board_counts) * std::size(switch_modes) * n_seqs,
      [&](std::size_t i) {
        cluster::ClusterOptions options;
        options.boards_per_config =
            board_counts[i / (std::size(switch_modes) * n_seqs)];
        options.enable_switching =
            switch_modes[(i / n_seqs) % std::size(switch_modes)];
        options.kernel_workers = kernel_jobs;
        return metrics::run_cluster(suite, sequences[i % n_seqs], options);
      });
  std::size_t cursor = 0;
  for (int boards : board_counts) {
    for (bool switching : switch_modes) {
      std::vector<double> pooled;
      int switches = 0, done = 0, submitted = 0;
      for (std::size_t si = 0; si < n_seqs; ++si) {
        const auto& r = cells[cursor++];
        pooled.insert(pooled.end(), r.response_ms.begin(),
                      r.response_ms.end());
        switches += static_cast<int>(r.switches.size());
        done += r.completed;
        submitted += r.submitted;
      }
      util::Summary s = util::summarize(pooled);
      table.add_row();
      table.cell(static_cast<std::int64_t>(boards));
      table.cell(switching ? "on" : "off");
      table.cell(s.mean, 1);
      table.cell(s.p95, 1);
      table.cell(static_cast<std::int64_t>(switches));
      table.cell(std::to_string(done) + "/" + std::to_string(submitted));
    }
  }
  table.print(std::cout);
  std::cout << "\n(switching compounds with horizontal scaling: a switch "
               "activates the rested spare pool while the origin boards "
               "drain their in-flight apps, so both pools chew through the "
               "backlog in parallel on top of the Big.Little efficiency "
               "gain)\n";
  return 0;
}
