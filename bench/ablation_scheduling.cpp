// Ablation: the scheduling mechanisms of Algorithm 1 / Algorithm 2.
//
// Switches each VersaSlot design choice off independently and reruns the
// standard and stress workloads:
//   - dual-core PR decoupling (vs single-core, the Fig 2 blocking problem)
//   - redistribution of leftover Little slots
//   - rebinding of waiting Little apps to freed Big slots
// Reported: mean / P95 response time over 5 pooled sequences.
// The (variant × congestion × sequence) grid runs on metrics::SweepRunner
// (--jobs N / VS_JOBS) with deterministic grid-order reduction.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

namespace {

struct Variant {
  const char* label;
  vs::metrics::SystemKind kind;
  bool dual_core;
  bool redistribution;
  bool rebinding;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  const Variant variants[] = {
      {"BL full", metrics::SystemKind::kVersaBigLittle, true, true, true},
      {"BL single-core", metrics::SystemKind::kVersaBigLittle, false, true,
       true},
      {"BL no-redistribution", metrics::SystemKind::kVersaBigLittle, true,
       false, true},
      {"BL no-rebinding", metrics::SystemKind::kVersaBigLittle, true, true,
       false},
      {"BL minimal", metrics::SystemKind::kVersaBigLittle, false, false,
       false},
      {"OL full", metrics::SystemKind::kVersaOnlyLittle, true, true, true},
      {"OL single-core", metrics::SystemKind::kVersaOnlyLittle, false, true,
       true},
      {"OL no-redistribution", metrics::SystemKind::kVersaOnlyLittle, true,
       false, true},
  };

  std::cout << "=== Ablation: dual-core / redistribution / rebinding ===\n"
            << "5 sequences x 20 apps per condition, pooled\n\n";

  for (auto congestion :
       {workload::Congestion::kStandard, workload::Congestion::kStress}) {
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = 20;
    auto sequences = workload::generate_sequences(config, 5, 2025);

    // One sweep job per (variant, sequence); reduced below in grid order.
    std::vector<metrics::SweepJob> grid;
    for (const Variant& v : variants) {
      metrics::RunOptions options;
      options.vs_options.dual_core = v.dual_core;
      options.vs_options.enable_redistribution = v.redistribution;
      options.vs_options.enable_rebinding = v.rebinding;
      for (const auto& seq : sequences) {
        grid.push_back(metrics::SweepJob{v.kind, seq, options});
      }
    }
    auto cells = runner.run(suite, grid);

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table({"variant", "mean ms", "P95 ms", "launch-blocked",
                       "preempt"});
    std::size_t cursor = 0;
    for (const Variant& v : variants) {
      std::vector<double> pooled;
      std::int64_t launch_blocked = 0, preempt = 0;
      for (std::size_t s = 0; s < sequences.size(); ++s) {
        const auto& r = cells[cursor++];
        pooled.insert(pooled.end(), r.response_ms.begin(),
                      r.response_ms.end());
        launch_blocked += r.counters.launch_blocked;
        preempt += r.counters.preemptions;
      }
      util::Summary s = util::summarize(pooled);
      table.add_row();
      table.cell(v.label);
      table.cell(s.mean, 1);
      table.cell(s.p95, 1);
      table.cell(launch_blocked);
      table.cell(preempt);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(dual-core decoupling is the paper's task-execution-"
               "blocking fix; disabling it re-introduces launch blocking)\n";
  return 0;
}
