// Fig 7 reproduction: resource-utilisation improvement of 3-in-1 tasks.
//
// Left panel: per-application LUT and FF utilisation when tasks run
// individually in Little slots versus bundled 3-in-1 in Big slots
// (post-implementation usage over slot capacity), and the improvement
// percentage (paper: +35% LUT, +29% FF on average).
//
// Right panel: the IC anchor — LUT usage of IC's first three tasks and
// their bundle at synthesis vs implementation (paper: bundle 0.98 -> 0.57;
// average task utilisation 0.41 -> 0.6 with bundling).
//
// A dynamic check follows: time-weighted fabric utilisation from actual
// Big.Little vs Only.Little runs of the same workload.
#include <iostream>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  apps::SynthesisModel model;
  auto suite = apps::make_suite(params, model);

  // The dynamic-check sweep runs up front (its per-spec completion split
  // feeds the dyn_* CSV columns of the left panel below); its summary
  // still prints after the two static panels, in the original order.
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  auto sequences = workload::generate_sequences(config, 3, 2025);
  // Both systems' replicas shard across the sweep workers; the fixed
  // (sequence, system) job order keeps the reduction deterministic.
  std::vector<metrics::SweepJob> grid;
  for (const auto& seq : sequences) {
    metrics::RunOptions dyn_options;
    // Phase accounting feeds the per-app completed/recovering split; the
    // utilisation integrals are unchanged (pure bookkeeping).
    dyn_options.phase_accounting = true;
    grid.push_back(metrics::SweepJob{metrics::SystemKind::kVersaBigLittle,
                                     seq, dyn_options});
    grid.push_back(metrics::SweepJob{metrics::SystemKind::kVersaOnlyLittle,
                                     seq, dyn_options});
  }
  auto cells = runner.run(suite, grid);
  // Per-spec completion split over the Big.Little dynamic-check replicas:
  // apps of this spec that completed, and of those, how many passed
  // through a recovery phase (zero here — no faults are injected — but
  // the schema stays aligned with faulted reruns).
  std::vector<int> dyn_completed(suite.size(), 0);
  std::vector<int> dyn_recovering(suite.size(), 0);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    for (const runtime::CompletedApp& c : cells[2 * i].apps) {
      auto spec = static_cast<std::size_t>(c.spec_index);
      ++dyn_completed[spec];
      auto phase = static_cast<std::size_t>(runtime::AppPhase::kRecovery);
      if (c.phase_ns[phase] > 0) ++dyn_recovering[spec];
    }
  }

  std::cout << "=== Fig 7 (left): utilisation improvement by 3-in-1 tasks "
               "===\n\n";
  util::CsvWriter csv("fig7_utilization.csv");
  csv.header({"app", "lut_little", "lut_big", "lut_improvement_pct",
              "ff_little", "ff_big", "ff_improvement_pct", "dyn_completed",
              "dyn_recovering"});

  util::Table table({"app", "LUT little", "LUT 3-in-1", "LUT +%",
                     "FF little", "FF 3-in-1", "FF +%"});
  double lut_sum = 0, ff_sum = 0;
  for (std::size_t app_index = 0; app_index < suite.size(); ++app_index) {
    const apps::AppSpec& app = suite[app_index];
    // Little: average implemented utilisation of one task in a Little slot.
    double lut_l = 0, ff_l = 0;
    for (const apps::TaskSpec& t : app.tasks) {
      lut_l += static_cast<double>(t.impl_usage.luts) /
               static_cast<double>(params.little_slot.luts);
      ff_l += static_cast<double>(t.impl_usage.ffs) /
              static_cast<double>(params.little_slot.ffs);
    }
    lut_l /= app.task_count();
    ff_l /= app.task_count();

    // Big: average implemented utilisation of the app's bundles in Big
    // slots, weighted by bundle width.
    auto bundles = apps::make_big_units(app, /*batch=*/17, params, model);
    double lut_b = 0, ff_b = 0;
    int weight = 0;
    for (const apps::UnitSpec& u : bundles) {
      lut_b += u.task_count() * static_cast<double>(u.impl_usage.luts) /
               static_cast<double>(params.big_slot.luts);
      ff_b += u.task_count() * static_cast<double>(u.impl_usage.ffs) /
              static_cast<double>(params.big_slot.ffs);
      weight += u.task_count();
    }
    lut_b /= weight;
    ff_b /= weight;

    double lut_imp = (lut_b / lut_l - 1) * 100;
    double ff_imp = (ff_b / ff_l - 1) * 100;
    lut_sum += lut_imp;
    ff_sum += ff_imp;

    table.add_row();
    table.cell(app.name);
    table.cell(lut_l, 2);
    table.cell(lut_b, 2);
    table.cell(lut_imp, 1);
    table.cell(ff_l, 2);
    table.cell(ff_b, 2);
    table.cell(ff_imp, 1);
    csv.row({app.name, util::fmt(lut_l, 4), util::fmt(lut_b, 4),
             util::fmt(lut_imp, 2), util::fmt(ff_l, 4), util::fmt(ff_b, 4),
             util::fmt(ff_imp, 2), std::to_string(dyn_completed[app_index]),
             std::to_string(dyn_recovering[app_index])});
  }
  table.print(std::cout);
  std::cout << "\n  average improvement: LUT +"
            << util::fmt(lut_sum / 5, 1) << "% (paper +35%), FF +"
            << util::fmt(ff_sum / 5, 1) << "% (paper +29%)\n\n";

  // ------------------------------------------------------------ right panel
  std::cout << "=== Fig 7 (right): IC tasks 1-3, synthesis vs "
               "implementation ===\n\n";
  const apps::AppSpec& ic = suite[2];
  util::Table right({"", "synthesis", "implementation"});
  double avg_task_impl = 0;
  for (int t = 0; t < 3; ++t) {
    const apps::TaskSpec& task = ic.tasks[static_cast<std::size_t>(t)];
    double s = static_cast<double>(task.synth_usage.luts) /
               static_cast<double>(params.little_slot.luts);
    double i = static_cast<double>(task.impl_usage.luts) /
               static_cast<double>(params.little_slot.luts);
    avg_task_impl += i / 3;
    right.add_row();
    right.cell("IC task" + std::to_string(t + 1) + " (Little)");
    right.cell(s, 2);
    right.cell(i, 2);
  }
  std::vector<fpga::ResourceVector> parts{ic.tasks[0].synth_usage,
                                          ic.tasks[1].synth_usage,
                                          ic.tasks[2].synth_usage};
  double bundle_synth = static_cast<double>(model.bundle_synth(parts).luts) /
                        static_cast<double>(params.big_slot.luts);
  double bundle_impl = static_cast<double>(model.bundle_impl(parts).luts) /
                       static_cast<double>(params.big_slot.luts);
  right.add_row();
  right.cell("Bundle1 (Big)");
  right.cell(bundle_synth, 2);
  right.cell(bundle_impl, 2);
  right.print(std::cout);
  std::cout << "\n  paper anchors: bundle 0.98 (synth) -> 0.57 (impl); "
               "average task utilisation 0.41 -> "
            << util::fmt(bundle_impl, 2)
            << " with bundling (paper 0.41 -> 0.6)\n"
            << "  measured: bundle " << util::fmt(bundle_synth, 2) << " -> "
            << util::fmt(bundle_impl, 2) << "; tasks avg "
            << util::fmt(avg_task_impl, 2) << "\n\n";

  // --------------------------------------------------- dynamic verification
  // (the replicas already ran before the left panel; see above)
  std::cout << "=== Dynamic check: time-weighted fabric utilisation ===\n\n";
  double bl_lut = 0, ol_lut = 0, bl_ff = 0, ol_ff = 0;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const auto& bl = cells[2 * i];
    const auto& ol = cells[2 * i + 1];
    bl_lut += bl.utilization.lut_of_occupied() / 3;
    ol_lut += ol.utilization.lut_of_occupied() / 3;
    bl_ff += bl.utilization.ff_of_occupied() / 3;
    ol_ff += ol.utilization.ff_of_occupied() / 3;
  }
  std::cout << "  occupied-slot LUT utilisation: Only.Little "
            << util::fmt(ol_lut, 3) << " -> Big.Little "
            << util::fmt(bl_lut, 3) << " ("
            << util::fmt((bl_lut / ol_lut - 1) * 100, 1) << "%)\n"
            << "  occupied-slot FF  utilisation: Only.Little "
            << util::fmt(ol_ff, 3) << " -> Big.Little "
            << util::fmt(bl_ff, 3) << " ("
            << util::fmt((bl_ff / ol_ff - 1) * 100, 1) << "%)\n"
            << "\nSeries written to fig7_utilization.csv\n";

  // Optional telemetry (--metrics-out PREFIX or VS_METRICS): replay the
  // dynamic check's first Big.Little cell with metrics bound and export.
  const std::string metrics_out = obs::resolve_metrics_out(&args);
  const std::string trace_out = obs::resolve_trace_out(&args);
  const std::string journal_out = obs::resolve_journal_out(&args);
  if (!metrics_out.empty() || !trace_out.empty() || !journal_out.empty()) {
    obs::Telemetry telemetry;
    obs::ClusterTraceHub hub;
    hub.enable_trace(!trace_out.empty());
    hub.enable_journal(!journal_out.empty());
    metrics::RunOptions opts;
    if (!metrics_out.empty()) opts.telemetry = &telemetry;
    if (!trace_out.empty() || !journal_out.empty()) {
      opts.hub = &hub;
      opts.phase_accounting = true;
    }
    (void)metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                    suite, sequences[0], opts);
    if (!metrics_out.empty()) {
      telemetry.info().config.emplace_back("figure", "fig7");
      telemetry.write_outputs(metrics_out);
      std::cout << "Telemetry written to " << metrics_out
                << ".{prom,jsonl,report.json}\n";
    }
    if (!trace_out.empty()) {
      hub.write_chrome_trace_file(trace_out);
      std::cout << "Chrome trace written to " << trace_out << "\n";
    }
    if (!journal_out.empty()) {
      hub.write_journal_file(journal_out);
      std::cout << "Run journal written to " << journal_out << "\n";
    }
  }
  return 0;
}
