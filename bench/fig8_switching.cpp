// Fig 8 reproduction: cross-board switching with live migration.
//
// Three long workloads of 80 applications each run on the two-board
// cluster. Left panel: the D_switch trace (recomputed every 4 application
// updates) with the Schmitt thresholds; a threshold crossing triggers the
// Only.Little -> Big.Little switch. Right panel: average response time with
// switching versus execution solely on the Only.Little board, plus the
// average switching (migration) overhead — the paper reports up to ~3x
// response-time reduction at 1.13 ms average overhead.
//
// Workload note (documented substitution, DESIGN.md §4): the paper uses
// "standard arrival intervals" on its testbed, where that load level
// saturates an Only.Little board. Our calibrated board absorbs standard
// arrivals without sustained backlog, so the long workloads here use a
// congested phase (stress-interval arrivals for the first 60 apps) followed
// by a relieved phase (standard intervals), reproducing the same
// congestion-then-relief trajectory the paper's figure shows.
#include <iostream>
#include <vector>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generator.h"

#include "workload/patterns.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  // Telemetry capture (--metrics-out PREFIX or VS_METRICS) attaches to the
  // first workload's with-switching run — the run whose D_switch loop and
  // Aurora migrations the figure is about.
  const std::string metrics_out = obs::resolve_metrics_out(&args);
  obs::Telemetry telemetry;
  // Causal trace / run journal capture (--trace-out FILE or VS_TRACE,
  // --journal-out FILE or VS_JOURNAL) rides the same first with-switching
  // run; either flag also turns on response-time phase accounting there.
  // The committed figure series never read these.
  const std::string trace_out = obs::resolve_trace_out(&args);
  const std::string journal_out = obs::resolve_journal_out(&args);
  obs::ClusterTraceHub hub;
  hub.enable_trace(!trace_out.empty());
  hub.enable_journal(!journal_out.empty());
  const bool observe = !trace_out.empty() || !journal_out.empty();
  // Round cap for the pre-copy comparison runs (--precopy-rounds N or
  // VS_PRECOPY_ROUNDS); the committed figure series never read it.
  const int precopy_rounds = static_cast<int>(
      util::resolve_int(&args, "precopy-rounds", "VS_PRECOPY_ROUNDS", 4));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  cluster::ClusterOptions options;

  std::cout << "=== Fig 8: D_switch and response time with cross-board "
               "switching ===\nthresholds T1=" << options.t1
            << " T2=" << options.t2 << ", recalc every "
            << options.dswitch_period << " app updates\n\n";

  util::CsvWriter trace_csv("fig8_dswitch_trace.csv");
  trace_csv.header({"workload", "t_s", "dswitch", "blocked", "prs", "apps",
                    "batch"});
  util::CsvWriter summary_csv("fig8_summary.csv");
  summary_csv.header({"workload", "mean_with_switching_ms",
                      "mean_only_little_ms", "improvement", "switches",
                      "avg_overhead_ms"});
  // Downtime breakdown (whole-state vs iterative pre-copy), one row per
  // switch event. Filled by the comparison pass after the figure runs.
  util::CsvWriter downtime_csv("fig8_downtime.csv");
  downtime_csv.header({"workload", "mode", "switch", "rounds",
                       "precopy_bytes", "stopcopy_bytes", "total_bytes",
                       "downtime_ms", "overhead_ms"});

  double total_overhead_ms = 0;
  int total_switches = 0;
  double best_improvement = 0;
  std::vector<std::vector<cluster::SwitchEvent>> whole_events;

  for (int w = 0; w < 3; ++w) {
    workload::Sequence seq = workload::fig8_long_workload(3000 + w);

    obs::Telemetry* capture =
        (w == 0 && !metrics_out.empty()) ? &telemetry : nullptr;
    cluster::ClusterOptions run_options = options;
    if (w == 0 && observe) {
      run_options.hub = &hub;
      run_options.phase_accounting = true;
    }
    metrics::ClusterRunResult with_sw =
        metrics::run_cluster(suite, seq, run_options, sim::seconds(36000.0),
                             capture);
    cluster::ClusterOptions off = options;
    off.enable_switching = false;
    metrics::ClusterRunResult only_little =
        metrics::run_cluster(suite, seq, off);

    for (const core::DSwitchSample& s : with_sw.dswitch_trace) {
      trace_csv.begin_row();
      trace_csv.field(static_cast<long long>(w));
      trace_csv.field(sim::to_seconds(s.time));
      trace_csv.field(s.value);
      trace_csv.field(s.blocked);
      trace_csv.field(s.prs);
      trace_csv.field(static_cast<long long>(s.apps));
      trace_csv.field(s.batch);
      trace_csv.end_row();
    }

    double overhead_ms = 0;
    for (const cluster::SwitchEvent& e : with_sw.switches) {
      overhead_ms += sim::to_ms(e.overhead);
    }
    double avg_overhead =
        with_sw.switches.empty()
            ? 0
            : overhead_ms / static_cast<double>(with_sw.switches.size());
    double improvement =
        only_little.response.mean / std::max(with_sw.response.mean, 1e-9);
    best_improvement = std::max(best_improvement, improvement);
    total_overhead_ms += overhead_ms;
    total_switches += static_cast<int>(with_sw.switches.size());
    whole_events.push_back(with_sw.switches);

    std::cout << "-- workload " << w + 1 << " (seed " << 3000 + w
              << ") --\n";
    // Compact D_switch sparkline over time.
    std::cout << "  D_switch trace (" << with_sw.dswitch_trace.size()
              << " samples): ";
    for (std::size_t i = 0; i < with_sw.dswitch_trace.size();
         i += std::max<std::size_t>(1, with_sw.dswitch_trace.size() / 40)) {
      double v = with_sw.dswitch_trace[i].value;
      const char* glyph = v >= options.t1  ? "#"
                          : v > options.t2 ? "+"
                                           : ".";
      std::cout << glyph;
    }
    std::cout << "  (#: >=T1, +: buffer zone, .: <=T2)\n";
    for (const cluster::SwitchEvent& e : with_sw.switches) {
      std::cout << "  switch @ " << util::fmt(sim::to_seconds(e.time), 1)
                << "s -> "
                << (e.to == core::SwitchLoop::Config::kBigLittle
                        ? "Big.Little"
                        : "Only.Little")
                << " (D=" << util::fmt(e.dswitch, 3) << ", "
                << e.apps_migrated << " apps, "
                << util::fmt_duration_ns(e.overhead) << ")\n";
    }
    std::cout << "  mean response: with switching "
              << util::fmt(with_sw.response.mean, 1) << " ms ("
              << with_sw.completed << "/" << with_sw.submitted
              << "), Only.Little "
              << util::fmt(only_little.response.mean, 1) << " ms -> "
              << util::fmt(improvement, 2) << "x reduction\n\n";

    summary_csv.row({std::to_string(w), util::fmt(with_sw.response.mean, 3),
                     util::fmt(only_little.response.mean, 3),
                     util::fmt(improvement, 4),
                     std::to_string(with_sw.switches.size()),
                     util::fmt(avg_overhead, 4)});
  }

  std::cout << "Anchors (paper -> measured):\n"
            << "  response-time reduction (up to): paper ~3x -> "
            << util::fmt(best_improvement, 2) << "x\n"
            << "  average switching overhead: paper 1.13 ms -> "
            << util::fmt(total_switches ? total_overhead_ms / total_switches
                                        : 0,
                         2)
            << " ms over " << total_switches << " switches\n\n";

  // Pre-copy comparison (beyond the paper's figure): re-run each workload
  // with iterative pre-copy migration enabled and put its stop-and-copy
  // downtime next to the whole-state switches above. Runs after — and
  // independently of — the figure series, which stay byte-identical.
  std::cout << "-- pre-copy live migration (round cap " << precopy_rounds
            << ") --\n";
  auto downtime_row = [&](int w, const char* mode, int index,
                          const cluster::SwitchEvent& e) {
    downtime_csv.begin_row();
    downtime_csv.field(static_cast<long long>(w));
    downtime_csv.field(std::string(mode));
    downtime_csv.field(static_cast<long long>(index));
    downtime_csv.field(static_cast<long long>(e.precopy_rounds));
    downtime_csv.field(e.precopy_bytes);
    downtime_csv.field(e.stopcopy_bytes);
    downtime_csv.field(e.bytes);
    downtime_csv.field(sim::to_ms(e.downtime));
    downtime_csv.field(sim::to_ms(e.overhead));
    downtime_csv.end_row();
  };
  double whole_down_ms = 0, pre_down_ms = 0;
  int whole_n = 0, pre_n = 0, pre_rounds_total = 0;
  for (int w = 0; w < 3; ++w) {
    workload::Sequence seq = workload::fig8_long_workload(3000 + w);
    cluster::ClusterOptions pre = options;
    pre.migration.precopy = true;
    pre.migration.max_rounds = precopy_rounds;
    metrics::ClusterRunResult r = metrics::run_cluster(suite, seq, pre);
    int index = 0;
    for (const cluster::SwitchEvent& e : whole_events[static_cast<std::size_t>(
             w)]) {
      downtime_row(w, "whole", index++, e);
      whole_down_ms += sim::to_ms(e.downtime);
      ++whole_n;
    }
    index = 0;
    for (const cluster::SwitchEvent& e : r.switches) {
      downtime_row(w, "precopy", index++, e);
      pre_down_ms += sim::to_ms(e.downtime);
      pre_rounds_total += e.precopy_rounds;
      ++pre_n;
    }
    std::cout << "  workload " << w + 1 << ": " << r.switches.size()
              << " pre-copy switches, mean response "
              << util::fmt(r.response.mean, 1) << " ms\n";
  }
  std::cout << "  avg stop-and-copy downtime: whole-state "
            << util::fmt(whole_n ? whole_down_ms / whole_n : 0, 3)
            << " ms -> pre-copy "
            << util::fmt(pre_n ? pre_down_ms / pre_n : 0, 3) << " ms ("
            << util::fmt(pre_n ? static_cast<double>(pre_rounds_total) / pre_n
                                : 0,
                         1)
            << " rounds streamed per switch while origins kept executing)\n"
            << "\nSeries written to fig8_dswitch_trace.csv / "
               "fig8_summary.csv / fig8_downtime.csv\n";

  if (!metrics_out.empty()) {
    telemetry.info().config.emplace_back("figure", "fig8");
    telemetry.info().config.emplace_back("workload", "0");
    telemetry.write_outputs(metrics_out);
    std::cout << "Telemetry written to " << metrics_out
              << ".{prom,jsonl,report.json}\n";
  }
  if (!trace_out.empty()) {
    hub.write_chrome_trace_file(trace_out);
    std::cout << "Chrome trace written to " << trace_out << "\n";
  }
  if (!journal_out.empty()) {
    hub.write_journal_file(journal_out);
    std::cout << "Run journal written to " << journal_out << "\n";
  }
  return 0;
}
