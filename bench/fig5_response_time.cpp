// Fig 5 reproduction: relative average response-time reduction under the
// four congestion conditions (Loose / Standard / Stress / Real-time),
// normalised to the exclusive-multiplexing baseline, for all six systems.
//
// Setup mirrors §IV: 10 randomly generated sequences of 20 applications
// each, batch sizes U[5,30], drawn from the five-app suite. Reported values
// are means over the pooled per-app response times of the 10 sequences.
//
// The (congestion × system × sequence) grid runs on metrics::SweepRunner:
// every replica is an independent simulator, results are reduced in fixed
// grid order, so the tables and CSV are byte-identical for any --jobs N
// (also settable via VS_JOBS; defaults to hardware concurrency).
//
// Output: one table per congestion condition (absolute ms and the paper's
// "x-times lower than baseline" normalisation) plus the paper's headline
// anchor ratios; series also exported to fig5_response_time.csv.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generator.h"

namespace {

constexpr std::uint64_t kMasterSeed = 2025;
constexpr int kSequences = 10;
constexpr int kAppsPerSequence = 20;

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  metrics::SweepRunner runner(util::resolve_jobs(&args));

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  std::cout << "=== Fig 5: relative response time reduction vs baseline ===\n"
            << kSequences << " sequences x " << kAppsPerSequence
            << " apps, batch U[5,30], master seed " << kMasterSeed << " ("
            << runner.jobs() << " worker thread(s))\n\n";

  // One job per (congestion, system, sequence) cell, in that order; the
  // reductions below index the same order, so output is independent of
  // the worker count.
  std::vector<metrics::SweepJob> grid;
  for (int ci = 0; ci < workload::kCongestionCount; ++ci) {
    workload::WorkloadConfig config;
    config.congestion = static_cast<workload::Congestion>(ci);
    config.apps_per_sequence = kAppsPerSequence;
    auto sequences =
        workload::generate_sequences(config, kSequences, kMasterSeed);
    for (int k = 0; k < metrics::kSystemCount; ++k) {
      for (const auto& seq : sequences) {
        metrics::RunOptions options;
        // Phase accounting feeds the completed/recovering CSV split; it is
        // pure bookkeeping, so every response-time column is unchanged.
        options.phase_accounting = true;
        grid.push_back(metrics::SweepJob{
            static_cast<metrics::SystemKind>(k), seq, options});
      }
    }
  }
  auto cells = runner.run(suite, grid);

  util::CsvWriter csv("fig5_response_time.csv");
  csv.header({"congestion", "system", "mean_ms", "reduction_vs_baseline",
              "completed", "recovering"});

  double bl_best_reduction = 0;
  double bl_vs_nimblock_best = 0;
  double bl_vs_ol_best = 0;

  std::size_t cursor = 0;
  for (int ci = 0; ci < workload::kCongestionCount; ++ci) {
    auto congestion = static_cast<workload::Congestion>(ci);

    std::vector<metrics::AggregateResult> results;
    std::vector<util::RunningStats> seq_means(
        static_cast<std::size_t>(metrics::kSystemCount));
    // Pooled completion split per system: apps finished clean vs apps whose
    // phase account shows recovery time (zero here — the fig5 grid injects
    // no faults — but the columns keep the schema aligned with the faulted
    // reruns of the same bench).
    std::vector<int> sys_completed(
        static_cast<std::size_t>(metrics::kSystemCount), 0);
    std::vector<int> sys_recovering(
        static_cast<std::size_t>(metrics::kSystemCount), 0);
    for (int k = 0; k < metrics::kSystemCount; ++k) {
      auto kind = static_cast<metrics::SystemKind>(k);
      std::vector<metrics::RunResult> per_seq(
          cells.begin() + static_cast<std::ptrdiff_t>(cursor),
          cells.begin() + static_cast<std::ptrdiff_t>(cursor + kSequences));
      cursor += kSequences;
      results.push_back(metrics::reduce_aggregate(kind, per_seq));
      // Per-sequence means for the between-sequence spread.
      for (const auto& r : per_seq) {
        seq_means[static_cast<std::size_t>(k)].add(r.response.mean);
        sys_completed[static_cast<std::size_t>(k)] += r.completed;
        sys_recovering[static_cast<std::size_t>(k)] +=
            metrics::recovered_completions(r.apps);
      }
    }
    double baseline_mean = results[0].mean_response_ms;
    double nimblock_mean = results[3].mean_response_ms;
    double ol_mean = results[4].mean_response_ms;
    double bl_mean = results[5].mean_response_ms;

    std::cout << "-- " << workload::congestion_name(congestion)
              << " arrivals --\n";
    util::Table table({"system", "mean ms", "+/- seq sd", "vs baseline"});
    for (std::size_t k = 0; k < results.size(); ++k) {
      const auto& r = results[k];
      double reduction = baseline_mean / r.mean_response_ms;
      table.add_row();
      table.cell(r.system);
      table.cell(r.mean_response_ms, 1);
      table.cell(seq_means[k].stddev(), 1);
      table.cell(util::fmt(reduction, 2) + "x");
      csv.row({workload::congestion_name(congestion), r.system,
               util::fmt(r.mean_response_ms, 3), util::fmt(reduction, 4),
               std::to_string(sys_completed[k]),
               std::to_string(sys_recovering[k])});
    }
    table.print(std::cout);
    std::cout << "\n";

    bl_best_reduction = std::max(bl_best_reduction, baseline_mean / bl_mean);
    bl_vs_nimblock_best =
        std::max(bl_vs_nimblock_best, nimblock_mean / bl_mean);
    bl_vs_ol_best = std::max(bl_vs_ol_best, ol_mean / bl_mean);
  }

  std::cout << "Headline anchors (paper -> measured):\n"
            << "  Big.Little vs Baseline (up to): paper 13.66x -> "
            << util::fmt(bl_best_reduction, 2) << "x\n"
            << "  Big.Little vs Nimblock (up to): paper 2.17x  -> "
            << util::fmt(bl_vs_nimblock_best, 2) << "x\n"
            << "  Big.Little vs Only.Little (up to): paper 1.63x -> "
            << util::fmt(bl_vs_ol_best, 2) << "x\n"
            << "\nSeries written to fig5_response_time.csv\n";

  // Optional telemetry capture (--metrics-out PREFIX or VS_METRICS): replay
  // the stress-congestion cell's first sequence through the full cluster
  // control plane (VersaSlot boards, D_switch loop, Aurora link) with the
  // metrics registry bound and the sampler running, then export. The grid
  // above is untouched — sweep replicas never carry telemetry.
  const std::string metrics_out = obs::resolve_metrics_out(&args);
  const std::string trace_out = obs::resolve_trace_out(&args);
  const std::string journal_out = obs::resolve_journal_out(&args);
  if (!metrics_out.empty() || !trace_out.empty() || !journal_out.empty()) {
    workload::WorkloadConfig config;
    config.congestion = workload::Congestion::kStress;
    config.apps_per_sequence = kAppsPerSequence;
    auto sequences = workload::generate_sequences(config, 1, kMasterSeed);
    obs::Telemetry telemetry;
    obs::ClusterTraceHub hub;
    hub.enable_trace(!trace_out.empty());
    hub.enable_journal(!journal_out.empty());
    cluster::ClusterOptions options;
    if (!trace_out.empty() || !journal_out.empty()) {
      options.hub = &hub;
      options.phase_accounting = true;
    }
    (void)metrics::run_cluster(suite, sequences[0], options,
                               sim::seconds(36000.0),
                               metrics_out.empty() ? nullptr : &telemetry);
    if (!metrics_out.empty()) {
      telemetry.info().config.emplace_back("figure", "fig5");
      telemetry.info().config.emplace_back("congestion", "Stress");
      telemetry.write_outputs(metrics_out);
      std::cout << "Telemetry written to " << metrics_out
                << ".{prom,jsonl,report.json}\n";
    }
    if (!trace_out.empty()) {
      hub.write_chrome_trace_file(trace_out);
      std::cout << "Chrome trace written to " << trace_out << "\n";
    }
    if (!journal_out.empty()) {
      hub.write_journal_file(journal_out);
      std::cout << "Run journal written to " << journal_out << "\n";
    }
  }
  return 0;
}
